//! Deterministic random tensor generation.
//!
//! Bohrium exposes `BH_RANDOM` backed by Random123 counters; we provide a
//! seeded, reproducible equivalent built on `rand`'s `StdRng`, which is all
//! the experiments need (see DESIGN.md §2 substitutions).

use crate::buffer::Buffer;
use crate::dtype::DType;
use crate::scalar::Scalar;
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fill choices for [`random_tensor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform floats in `[0, 1)`; integers uniform in `[0, 100)`;
    /// bools fair-coin.
    Uniform,
    /// Uniform floats in `[lo, hi)`; integers uniform in `[lo, hi)`
    /// (bounds cast); bools fair-coin.
    Range(f64, f64),
    /// Values guaranteed non-zero (useful for division denominators):
    /// floats in `[1, 2)`, integers in `[1, 10)`, bools all true.
    NonZero,
}

/// Deterministic random tensor of the given dtype/shape.
///
/// The same `(dtype, shape, seed, dist)` always produces the same tensor.
///
/// # Examples
///
/// ```
/// use bh_tensor::{random_tensor, Distribution, DType, Shape};
/// let a = random_tensor(DType::Float64, Shape::vector(4), 42, Distribution::Uniform);
/// let b = random_tensor(DType::Float64, Shape::vector(4), 42, Distribution::Uniform);
/// assert_eq!(a, b);
/// ```
pub fn random_tensor(dtype: DType, shape: Shape, seed: u64, dist: Distribution) -> Tensor {
    let n = shape.nelem();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buffer = Buffer::zeros(dtype, n);
    for i in 0..n {
        let s = sample(&mut rng, dtype, dist);
        buffer.set_scalar(i, s).expect("index in range");
    }
    Tensor::from_parts(buffer, shape).expect("buffer sized from shape")
}

fn sample(rng: &mut StdRng, dtype: DType, dist: Distribution) -> Scalar {
    match dtype {
        DType::Bool => Scalar::Bool(match dist {
            Distribution::NonZero => true,
            _ => rng.gen_bool(0.5),
        }),
        d if d.is_float() => {
            let v = match dist {
                Distribution::Uniform => rng.gen_range(0.0..1.0),
                Distribution::Range(lo, hi) => rng.gen_range(lo..hi),
                Distribution::NonZero => rng.gen_range(1.0..2.0),
            };
            Scalar::from_f64(v, d)
        }
        d => {
            let (lo, hi) = match dist {
                Distribution::Uniform => (0i64, 100i64),
                Distribution::Range(lo, hi) => (lo as i64, (hi as i64).max(lo as i64 + 1)),
                Distribution::NonZero => (1i64, 10i64),
            };
            // Clamp to the target type's representable band to avoid
            // wrap-around surprises for small dtypes.
            let cap = match d.size_of() {
                1 => 127,
                2 => 32_000,
                _ => i64::MAX,
            };
            let v = rng.gen_range(lo.max(-cap)..hi.min(cap));
            Scalar::from_i64(v, d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::ALL_DTYPES;

    #[test]
    fn deterministic_per_seed() {
        for &d in &ALL_DTYPES {
            let a = random_tensor(d, Shape::vector(16), 7, Distribution::Uniform);
            let b = random_tensor(d, Shape::vector(16), 7, Distribution::Uniform);
            assert_eq!(a, b, "{d}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_tensor(DType::Float64, Shape::vector(64), 1, Distribution::Uniform);
        let b = random_tensor(DType::Float64, Shape::vector(64), 2, Distribution::Uniform);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_floats_in_unit_interval() {
        let t = random_tensor(DType::Float32, Shape::vector(256), 3, Distribution::Uniform);
        for v in t.to_f64_vec() {
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn nonzero_has_no_zeros() {
        for &d in &ALL_DTYPES {
            let t = random_tensor(d, Shape::vector(64), 5, Distribution::NonZero);
            for v in t.to_f64_vec() {
                assert_ne!(v, 0.0, "{d}");
            }
        }
    }

    #[test]
    fn range_respected_for_ints() {
        let t = random_tensor(
            DType::Int32,
            Shape::vector(128),
            11,
            Distribution::Range(-5.0, 5.0),
        );
        for v in t.to_f64_vec() {
            assert!((-5.0..5.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn small_dtypes_stay_in_band() {
        let t = random_tensor(DType::Int8, Shape::vector(128), 13, Distribution::Uniform);
        for v in t.to_f64_vec() {
            assert!((0.0..=127.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn shape_preserved() {
        let t = random_tensor(
            DType::Float64,
            Shape::from([3, 4]),
            1,
            Distribution::Uniform,
        );
        assert_eq!(t.shape(), &Shape::from([3, 4]));
    }
}
