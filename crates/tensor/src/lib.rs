//! # bh-tensor — dense strided tensor substrate
//!
//! The storage and compute substrate for the reproduction of
//! *Algebraic Transformation of Descriptive Vector Byte-code Sequences*
//! (Middleware DS '16). Bohrium byte-code "operates on tensors of varying
//! size and shape" through strided *views* of flat *base arrays*; this crate
//! provides exactly those pieces:
//!
//! * [`DType`] / [`Scalar`] — the dynamically typed element world of the
//!   byte-code, with NumPy-compatible promotion.
//! * [`Shape`] / [`Slice`] / [`ViewGeom`] — `[start:stop:step]` view
//!   geometry as written in the paper's listings.
//! * [`Buffer`] — flat, dtype-tagged storage for one base array.
//! * [`Tensor`] — owned, contiguous tensors (host-side results).
//! * [`kernels`] — the strided loops every byte-code bottoms out in.
//!
//! # Example
//!
//! ```
//! use bh_tensor::{kernels, Shape, Slice, Tensor, ViewGeom, DType};
//!
//! // The paper's `a0 [0:10:1]` view:
//! let base = Shape::vector(10);
//! let full = ViewGeom::from_slices(&base, &[Slice::new(Some(0), Some(10), 1)]).unwrap();
//! let mut a0 = Tensor::zeros(DType::Float64, base.clone());
//!
//! // BH_ADD a0 a0 3 (constant broadcast handled by the VM; shown raw here):
//! let data = a0.as_mut_slice::<f64>().unwrap();
//! kernels::map1_inplace(data, &full, &full, |x| x + 3.0);
//! assert_eq!(a0.to_f64_vec(), vec![3.0; 10]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

mod buffer;
mod dtype;
mod error;
pub mod kernels;
mod random;
mod scalar;
mod shape;
mod tensor;
mod view;

pub use buffer::Buffer;
pub use dtype::{DType, Element, ParseDTypeError, ALL_DTYPES};
pub use error::TensorError;
pub use random::{random_tensor, Distribution};
pub use scalar::{ParseScalarError, Scalar};
pub use shape::Shape;
pub use tensor::Tensor;
pub use view::{Offsets, Slice, ViewDim, ViewGeom};
