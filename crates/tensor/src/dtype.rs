//! Element data types supported by the byte-code language.
//!
//! Bohrium's byte-code is typed: every base array carries one of the
//! NumPy-style element types below. We implement the full integer /
//! floating-point / boolean set; complex types are out of scope (see
//! DESIGN.md §2).

use std::fmt;
use std::str::FromStr;

/// Element type of a tensor base.
///
/// The discriminant order is used for type-promotion ranking (see
/// [`DType::promote`]); keep boolean < unsigned < signed < float.
///
/// # Examples
///
/// ```
/// use bh_tensor::DType;
/// assert_eq!(DType::Float64.size_of(), 8);
/// assert_eq!(DType::promote(DType::Int32, DType::Float32), DType::Float32);
/// assert_eq!("f64".parse::<DType>().unwrap(), DType::Float64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DType {
    /// Boolean (`bool` in NumPy, `bh_bool` in Bohrium).
    Bool,
    /// 8-bit unsigned integer.
    UInt8,
    /// 16-bit unsigned integer.
    UInt16,
    /// 32-bit unsigned integer.
    UInt32,
    /// 64-bit unsigned integer.
    UInt64,
    /// 8-bit signed integer.
    Int8,
    /// 16-bit signed integer.
    Int16,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// IEEE-754 single precision.
    Float32,
    /// IEEE-754 double precision. The default type of the front-end,
    /// matching NumPy's `np.zeros` default.
    Float64,
}

/// All dtypes, in promotion-rank order.
pub const ALL_DTYPES: [DType; 11] = [
    DType::Bool,
    DType::UInt8,
    DType::UInt16,
    DType::UInt32,
    DType::UInt64,
    DType::Int8,
    DType::Int16,
    DType::Int32,
    DType::Int64,
    DType::Float32,
    DType::Float64,
];

impl DType {
    /// Size in bytes of one element of this type.
    pub const fn size_of(self) -> usize {
        match self {
            DType::Bool | DType::UInt8 | DType::Int8 => 1,
            DType::UInt16 | DType::Int16 => 2,
            DType::UInt32 | DType::Int32 | DType::Float32 => 4,
            DType::UInt64 | DType::Int64 | DType::Float64 => 8,
        }
    }

    /// True for `Float32`/`Float64`.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::Float32 | DType::Float64)
    }

    /// True for any signed or unsigned integer type (not bool, not float).
    pub const fn is_integer(self) -> bool {
        matches!(
            self,
            DType::UInt8
                | DType::UInt16
                | DType::UInt32
                | DType::UInt64
                | DType::Int8
                | DType::Int16
                | DType::Int32
                | DType::Int64
        )
    }

    /// True for signed integers.
    pub const fn is_signed_integer(self) -> bool {
        matches!(
            self,
            DType::Int8 | DType::Int16 | DType::Int32 | DType::Int64
        )
    }

    /// True for unsigned integers.
    pub const fn is_unsigned_integer(self) -> bool {
        matches!(
            self,
            DType::UInt8 | DType::UInt16 | DType::UInt32 | DType::UInt64
        )
    }

    /// True if the type is ordered and supports `<`-style comparisons
    /// (everything in this set is; kept for future complex support).
    pub const fn is_ordered(self) -> bool {
        true
    }

    /// NumPy-style short name (`"f64"`, `"i32"`, `"bool"`, …).
    pub const fn short_name(self) -> &'static str {
        match self {
            DType::Bool => "bool",
            DType::UInt8 => "u8",
            DType::UInt16 => "u16",
            DType::UInt32 => "u32",
            DType::UInt64 => "u64",
            DType::Int8 => "i8",
            DType::Int16 => "i16",
            DType::Int32 => "i32",
            DType::Int64 => "i64",
            DType::Float32 => "f32",
            DType::Float64 => "f64",
        }
    }

    /// Bohrium C name (`"BH_FLOAT64"` …), used by the byte-code printer's
    /// verbose mode.
    pub const fn bohrium_name(self) -> &'static str {
        match self {
            DType::Bool => "BH_BOOL",
            DType::UInt8 => "BH_UINT8",
            DType::UInt16 => "BH_UINT16",
            DType::UInt32 => "BH_UINT32",
            DType::UInt64 => "BH_UINT64",
            DType::Int8 => "BH_INT8",
            DType::Int16 => "BH_INT16",
            DType::Int32 => "BH_INT32",
            DType::Int64 => "BH_INT64",
            DType::Float32 => "BH_FLOAT32",
            DType::Float64 => "BH_FLOAT64",
        }
    }

    /// NumPy type-promotion result of combining two dtypes.
    ///
    /// Follows the same lattice NumPy (and Bohrium's bridge) uses for
    /// same-kind promotion; mixed signed/unsigned of equal width promotes to
    /// the next-wider signed type, and u64+signed promotes to f64 as NumPy
    /// does.
    pub fn promote(a: DType, b: DType) -> DType {
        use DType::*;
        if a == b {
            return a;
        }
        // Bool promotes to anything else.
        if a == Bool {
            return b;
        }
        if b == Bool {
            return a;
        }
        // Float beats everything; wider float wins.
        if a.is_float() || b.is_float() {
            return if a == Float64 || b == Float64 {
                Float64
            } else {
                Float32
            };
        }
        // Both integers.
        let (sa, sb) = (a.size_of(), b.size_of());
        match (a.is_signed_integer(), b.is_signed_integer()) {
            (true, true) => signed_of_size(sa.max(sb)),
            (false, false) => unsigned_of_size(sa.max(sb)),
            // Mixed signedness.
            (true, false) | (false, true) => {
                let (signed, unsigned) = if a.is_signed_integer() {
                    (a, b)
                } else {
                    (b, a)
                };
                if signed.size_of() > unsigned.size_of() {
                    signed
                } else if unsigned.size_of() < 8 {
                    signed_of_size(unsigned.size_of() * 2)
                } else {
                    // NumPy: int64 + uint64 -> float64.
                    Float64
                }
            }
        }
    }

    /// The dtype used when a value of this dtype is summed / multiplied in a
    /// reduction (identity: reductions keep their input dtype, except bool
    /// sums which widen to i64, matching NumPy).
    pub fn reduce_dtype(self) -> DType {
        match self {
            DType::Bool => DType::Int64,
            other => other,
        }
    }
}

const fn signed_of_size(bytes: usize) -> DType {
    match bytes {
        1 => DType::Int8,
        2 => DType::Int16,
        4 => DType::Int32,
        _ => DType::Int64,
    }
}

const fn unsigned_of_size(bytes: usize) -> DType {
    match bytes {
        1 => DType::UInt8,
        2 => DType::UInt16,
        4 => DType::UInt32,
        _ => DType::UInt64,
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Error returned when parsing a [`DType`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDTypeError {
    text: String,
}

impl fmt::Display for ParseDTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown dtype `{}`", self.text)
    }
}

impl std::error::Error for ParseDTypeError {}

impl FromStr for DType {
    type Err = ParseDTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let dt = match t {
            "bool" | "BH_BOOL" => DType::Bool,
            "u8" | "uint8" | "BH_UINT8" => DType::UInt8,
            "u16" | "uint16" | "BH_UINT16" => DType::UInt16,
            "u32" | "uint32" | "BH_UINT32" => DType::UInt32,
            "u64" | "uint64" | "BH_UINT64" => DType::UInt64,
            "i8" | "int8" | "BH_INT8" => DType::Int8,
            "i16" | "int16" | "BH_INT16" => DType::Int16,
            "i32" | "int32" | "BH_INT32" => DType::Int32,
            "i64" | "int64" | "BH_INT64" => DType::Int64,
            "f32" | "float32" | "BH_FLOAT32" => DType::Float32,
            "f64" | "float64" | "BH_FLOAT64" => DType::Float64,
            _ => return Err(ParseDTypeError { text: t.to_owned() }),
        };
        Ok(dt)
    }
}

/// Statically typed element: the bridge between Rust generic kernels and the
/// dynamically typed [`DType`] world.
///
/// Sealed: implemented exactly for the eleven supported element types.
pub trait Element:
    Copy + PartialEq + PartialOrd + fmt::Debug + fmt::Display + Send + Sync + 'static + private::Sealed
{
    /// The dynamic dtype tag corresponding to `Self`.
    const DTYPE: DType;
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from f64 (used for constants).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to f64 (used for comparisons in tests).
    fn to_f64(self) -> f64;
}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_element {
    ($($t:ty => $d:expr, $zero:expr, $one:expr;)*) => {$(
        impl private::Sealed for $t {}
        impl Element for $t {
            const DTYPE: DType = $d;
            #[inline] fn zero() -> Self { $zero }
            #[inline] fn one() -> Self { $one }
            #[inline] fn from_f64(v: f64) -> Self { v as $t }
            #[inline] fn to_f64(self) -> f64 { self as f64 }
        }
    )*};
}

impl_element! {
    u8  => DType::UInt8,  0, 1;
    u16 => DType::UInt16, 0, 1;
    u32 => DType::UInt32, 0, 1;
    u64 => DType::UInt64, 0, 1;
    i8  => DType::Int8,   0, 1;
    i16 => DType::Int16,  0, 1;
    i32 => DType::Int32,  0, 1;
    i64 => DType::Int64,  0, 1;
    f32 => DType::Float32, 0.0, 1.0;
    f64 => DType::Float64, 0.0, 1.0;
}

impl private::Sealed for bool {}
impl Element for bool {
    const DTYPE: DType = DType::Bool;
    #[inline]
    fn zero() -> Self {
        false
    }
    #[inline]
    fn one() -> Self {
        true
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v != 0.0
    }
    #[inline]
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_rust_types() {
        assert_eq!(DType::Bool.size_of(), std::mem::size_of::<bool>());
        assert_eq!(DType::Int32.size_of(), 4);
        assert_eq!(DType::Float64.size_of(), 8);
        assert_eq!(DType::UInt16.size_of(), 2);
    }

    #[test]
    fn promotion_is_commutative() {
        for &a in &ALL_DTYPES {
            for &b in &ALL_DTYPES {
                assert_eq!(DType::promote(a, b), DType::promote(b, a), "{a} {b}");
            }
        }
    }

    #[test]
    fn promotion_is_idempotent() {
        for &a in &ALL_DTYPES {
            assert_eq!(DType::promote(a, a), a);
        }
    }

    #[test]
    fn promotion_absorbs_bool() {
        for &a in &ALL_DTYPES {
            assert_eq!(DType::promote(DType::Bool, a), a);
        }
    }

    #[test]
    fn promotion_examples_match_numpy() {
        use DType::*;
        assert_eq!(DType::promote(Int32, Float32), Float32);
        assert_eq!(DType::promote(Int64, Float32), Float32);
        assert_eq!(DType::promote(Int8, UInt8), Int16);
        assert_eq!(DType::promote(Int32, UInt32), Int64);
        assert_eq!(DType::promote(Int64, UInt64), Float64);
        assert_eq!(DType::promote(UInt8, UInt16), UInt16);
        assert_eq!(DType::promote(Int16, Int64), Int64);
        assert_eq!(DType::promote(UInt64, UInt8), UInt64);
    }

    #[test]
    fn promotion_result_never_narrower() {
        for &a in &ALL_DTYPES {
            for &b in &ALL_DTYPES {
                let p = DType::promote(a, b);
                assert!(p.size_of() >= a.size_of().min(b.size_of()));
            }
        }
    }

    #[test]
    fn parse_round_trips_short_names() {
        for &d in &ALL_DTYPES {
            assert_eq!(d.short_name().parse::<DType>().unwrap(), d);
            assert_eq!(d.bohrium_name().parse::<DType>().unwrap(), d);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("f65".parse::<DType>().is_err());
        assert!("".parse::<DType>().is_err());
        let e = "q".parse::<DType>().unwrap_err();
        assert_eq!(e.to_string(), "unknown dtype `q`");
    }

    #[test]
    fn element_tags_agree() {
        fn tag<T: Element>() -> DType {
            T::DTYPE
        }
        assert_eq!(tag::<f64>(), DType::Float64);
        assert_eq!(tag::<bool>(), DType::Bool);
        assert_eq!(tag::<u16>(), DType::UInt16);
    }

    #[test]
    fn element_conversions() {
        assert_eq!(<i32 as Element>::from_f64(3.7), 3);
        assert!(<bool as Element>::from_f64(2.0));
        assert_eq!(true.to_f64(), 1.0);
        assert_eq!(<f32 as Element>::one().to_f64(), 1.0);
    }

    #[test]
    fn reduce_dtype_widens_bool_only() {
        assert_eq!(DType::Bool.reduce_dtype(), DType::Int64);
        for &d in &ALL_DTYPES {
            if d != DType::Bool {
                assert_eq!(d.reduce_dtype(), d);
            }
        }
    }

    #[test]
    fn classification_predicates() {
        assert!(DType::Float32.is_float());
        assert!(!DType::Int8.is_float());
        assert!(DType::Int8.is_integer() && DType::Int8.is_signed_integer());
        assert!(DType::UInt32.is_integer() && DType::UInt32.is_unsigned_integer());
        assert!(!DType::Bool.is_integer());
    }
}
