//! Addition-chain schedules for power expansion under the paper's
//! two-register constraint.
//!
//! §3.1: "we usually only have access to the origin and result tensors,
//! since copying data to create temporary tensors would be time consuming".
//! With only the origin `a0` (holding `x`) and the result `a1` available,
//! every multiply is one of:
//!
//! * `a1 ← a0 · a0` — the *opening squaring* (exponent becomes 2),
//! * `a1 ← a1 · a1` — doubling the accumulated exponent,
//! * `a1 ← a1 · a0` — incrementing it by one.
//!
//! The reachable schedules are therefore the doubling/increment addition
//! chains, and the optimum is computed exactly here by dynamic programming.
//! For x¹⁰ the optimum is **4** multiplies (2→4→5→10) — one better than the
//! 5 of the paper's Listing 5 (2→4→8→9→10); EXPERIMENTS.md records this
//! delta.

/// One multiply in a power schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStep {
    /// `a1 ← a0 · a0`: start the chain at exponent 2.
    SquareOrigin,
    /// `a1 ← a1 · a1`: double the exponent.
    SquareAcc,
    /// `a1 ← a1 · a0`: increment the exponent.
    MulOrigin,
}

/// A complete multiply schedule computing `a1 = a0^n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerChain {
    /// Target exponent.
    pub exponent: u64,
    /// Multiply steps, in execution order.
    pub steps: Vec<ChainStep>,
}

impl PowerChain {
    /// Number of `BH_MULTIPLY` byte-codes the schedule emits.
    pub fn multiplies(&self) -> usize {
        self.steps.len()
    }

    /// Verify the schedule actually computes `x^n` (exponent bookkeeping).
    pub fn is_valid(&self) -> bool {
        let mut e: u64 = 1; // a1 conceptually mirrors a0 before the chain
        let mut started = false;
        for step in &self.steps {
            match step {
                ChainStep::SquareOrigin => {
                    if started {
                        return false; // only valid as the opening step
                    }
                    e = 2;
                    started = true;
                }
                ChainStep::SquareAcc => {
                    if !started {
                        return false;
                    }
                    e = e.checked_mul(2).expect("exponent fits u64");
                }
                ChainStep::MulOrigin => {
                    if !started {
                        return false;
                    }
                    e = e.checked_add(1).expect("exponent fits u64");
                }
            }
        }
        started && e == self.exponent
    }
}

/// The **optimal** schedule for `x^n` under the two-register constraint
/// (minimal multiply count), or `None` for `n < 2` (no multiplies needed:
/// `x^1` is a copy and `x^0` a fill — the rewrite rule special-cases them).
///
/// # Examples
///
/// ```
/// use bh_opt::chains::optimal_chain;
/// let c = optimal_chain(10).unwrap();
/// assert_eq!(c.multiplies(), 4); // 2 → 4 → 5 → 10
/// assert!(c.is_valid());
/// ```
pub fn optimal_chain(n: u64) -> Option<PowerChain> {
    if n < 2 {
        return None;
    }
    // Work backwards: halve when even, decrement when odd, down to 2.
    // For the doubling/increment operation set this greedy reversal is
    // optimal: any chain must pass through ⌈k/2⌉ for each doubling, and the
    // DP below double-checks optimality in tests for all n ≤ 4096.
    let mut steps = Vec::new();
    let mut k = n;
    while k > 2 {
        if k % 2 == 0 {
            steps.push(ChainStep::SquareAcc);
            k /= 2;
        } else {
            steps.push(ChainStep::MulOrigin);
            k -= 1;
        }
    }
    steps.push(ChainStep::SquareOrigin);
    steps.reverse();
    Some(PowerChain { exponent: n, steps })
}

/// The naive schedule of Listing 4: `x², x³, …, xⁿ` with `n − 1`
/// multiplies.
///
/// # Examples
///
/// ```
/// use bh_opt::chains::naive_chain;
/// let c = naive_chain(10).unwrap();
/// assert_eq!(c.multiplies(), 9); // the paper's Listing 4
/// assert!(c.is_valid());
/// ```
pub fn naive_chain(n: u64) -> Option<PowerChain> {
    if n < 2 {
        return None;
    }
    let mut steps = vec![ChainStep::SquareOrigin];
    for _ in 2..n {
        steps.push(ChainStep::MulOrigin);
    }
    Some(PowerChain { exponent: n, steps })
}

/// The schedule the paper's Listing 5 demonstrates for x¹⁰
/// (2 → 4 → 8 → 9 → 10, five multiplies). Kept as a named artefact so
/// tests and benchmarks can reproduce the listing verbatim.
pub fn listing5_chain() -> PowerChain {
    use ChainStep::*;
    PowerChain {
        exponent: 10,
        steps: vec![SquareOrigin, SquareAcc, SquareAcc, MulOrigin, MulOrigin],
    }
}

/// Minimal multiply count for `x^n` under the two-register constraint
/// (`None` for n < 2). Exact dynamic program; used to cross-check
/// [`optimal_chain`] and by the cost model.
pub fn optimal_multiplies(n: u64) -> Option<u64> {
    if n < 2 {
        return None;
    }
    // cost[k] = min multiplies to reach exponent k starting from the
    // opening squaring (cost[2] = 1).
    let n_us = usize::try_from(n).ok()?;
    let mut cost = vec![u64::MAX; n_us + 1];
    cost[2] = 1;
    for k in 3..=n_us {
        let mut best = cost[k - 1].saturating_add(1);
        if k % 2 == 0 {
            best = best.min(cost[k / 2].saturating_add(1));
        }
        cost[k] = best;
    }
    Some(cost[n_us])
}

/// Multiply count of the *unconstrained* square-and-multiply binary method
/// (temporaries allowed): `⌊log₂ n⌋ + popcount(n) − 1`. Reference point
/// for how much the two-register constraint costs.
pub fn binary_method_multiplies(n: u64) -> Option<u64> {
    if n < 1 {
        return None;
    }
    Some(63 - n.leading_zeros() as u64 + n.count_ones() as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_exponent_ten() {
        let opt = optimal_chain(10).unwrap();
        assert!(opt.is_valid());
        assert_eq!(opt.multiplies(), 4);
        // The paper's Listing 5 chain is valid but one multiply worse.
        let paper = listing5_chain();
        assert!(paper.is_valid());
        assert_eq!(paper.multiplies(), 5);
        // Listing 4 costs nine.
        assert_eq!(naive_chain(10).unwrap().multiplies(), 9);
    }

    #[test]
    fn greedy_matches_dp_up_to_4096() {
        for n in 2..=4096u64 {
            let chain = optimal_chain(n).unwrap();
            assert!(chain.is_valid(), "n={n}");
            assert_eq!(
                chain.multiplies() as u64,
                optimal_multiplies(n).unwrap(),
                "greedy suboptimal at n={n}"
            );
        }
    }

    #[test]
    fn powers_of_two_use_only_squarings() {
        for k in 1..=12u32 {
            let n = 1u64 << k;
            let chain = optimal_chain(n).unwrap();
            assert_eq!(chain.multiplies() as u64, k as u64);
            assert!(chain
                .steps
                .iter()
                .all(|s| !matches!(s, ChainStep::MulOrigin)));
        }
    }

    #[test]
    fn naive_chain_is_linear() {
        for n in 2..64u64 {
            let c = naive_chain(n).unwrap();
            assert!(c.is_valid());
            assert_eq!(c.multiplies() as u64, n - 1);
        }
    }

    #[test]
    fn small_exponents_have_no_chain() {
        assert!(optimal_chain(0).is_none());
        assert!(optimal_chain(1).is_none());
        assert!(naive_chain(1).is_none());
    }

    #[test]
    fn constrained_cost_close_to_binary_method() {
        // The two-register constraint costs at most a couple of extra
        // multiplies vs the unconstrained binary method.
        for n in 2..=1024u64 {
            let constrained = optimal_multiplies(n).unwrap();
            let unconstrained = binary_method_multiplies(n).unwrap();
            assert!(constrained >= unconstrained.saturating_sub(1), "n={n}");
            assert!(constrained <= unconstrained + 1, "n={n}");
        }
    }

    #[test]
    fn validity_rejects_malformed_chains() {
        // Doubling before the opening squaring is meaningless.
        let bad = PowerChain {
            exponent: 4,
            steps: vec![ChainStep::SquareAcc],
        };
        assert!(!bad.is_valid());
        // A second opening squaring mid-chain is not allowed.
        let bad = PowerChain {
            exponent: 4,
            steps: vec![ChainStep::SquareOrigin, ChainStep::SquareOrigin],
        };
        assert!(!bad.is_valid());
        // Wrong target exponent.
        let bad = PowerChain {
            exponent: 5,
            steps: vec![ChainStep::SquareOrigin],
        };
        assert!(!bad.is_valid());
    }
}
