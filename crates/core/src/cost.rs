//! Static cost model for byte-code programs.
//!
//! Scores a program before executing it, in the cost regime the paper
//! targets: every byte-code is (at least) one kernel launch over the whole
//! operand view, so removing byte-codes removes fixed launch overhead and
//! full-array memory traffic, and replacing `BH_POWER` with multiplies
//! trades expensive flops for cheap ones. The pass manager reports these
//! estimates before/after transformation; the VM's [`bh_vm::ExecStats`]
//! measures the same quantities dynamically.
//!
//! [`bh_vm::ExecStats`]: https://docs.rs/bh-vm

use bh_ir::{OpKind, Opcode, Operand, Program};
use std::fmt;

/// Tunable weights of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostParams {
    /// Fixed cost per kernel launch, in abstract time units. The default
    /// (4096) reflects a GPU-offload regime where launching dominates
    /// small arrays.
    pub launch_overhead: u64,
    /// Time units per abstract flop.
    pub flop_cost: u64,
    /// Time units per byte moved.
    pub byte_cost: u64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            launch_overhead: 4096,
            flop_cost: 4,
            byte_cost: 1,
        }
    }
}

/// Static cost estimate of one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostEstimate {
    /// Byte-codes (excluding `BH_NONE`).
    pub bytecodes: u64,
    /// Kernel launches (byte-codes that execute work).
    pub kernels: u64,
    /// Abstract flops (per-element unit costs + linalg models).
    pub flops: u64,
    /// Bytes read + written by operand views.
    pub traffic_bytes: u64,
    /// Combined model time under the parameters used.
    pub time: u64,
}

impl CostEstimate {
    /// `self.time` as a ratio of `other.time` (speed-up when < 1).
    pub fn relative_to(&self, other: &CostEstimate) -> f64 {
        if other.time == 0 {
            return 1.0;
        }
        self.time as f64 / other.time as f64
    }
}

impl fmt::Display for CostEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} byte-codes, {} kernels, {} flops, {} B traffic, model time {}",
            self.bytecodes, self.kernels, self.flops, self.traffic_bytes, self.time
        )
    }
}

/// Estimate a program's execution cost statically.
pub fn estimate(program: &Program, params: &CostParams) -> CostEstimate {
    let mut est = CostEstimate::default();
    for instr in program.instrs() {
        if instr.is_noop() {
            continue;
        }
        est.bytecodes += 1;
        let out_nelem = instr
            .out_view()
            .and_then(|v| program.resolve_view(v).ok())
            .map(|g| g.nelem() as u64);
        match instr.op.kind() {
            OpKind::System => {
                // Syncs/frees are runtime bookkeeping, not kernels.
            }
            OpKind::LinAlg => {
                est.kernels += 1;
                est.flops += linalg_flops(program, instr);
                est.traffic_bytes += view_traffic(program, instr);
            }
            _ => {
                est.kernels += 1;
                let work_nelem = match instr.op.kind() {
                    // Reductions/scans do work proportional to the input.
                    OpKind::Reduction | OpKind::Scan => instr.operands[1]
                        .as_view()
                        .and_then(|v| program.resolve_view(v).ok())
                        .map(|g| g.nelem() as u64)
                        .unwrap_or(0),
                    _ => out_nelem.unwrap_or(0),
                };
                est.flops += instr.op.unit_cost() * work_nelem;
                est.traffic_bytes += view_traffic(program, instr);
            }
        }
    }
    est.time = est.kernels * params.launch_overhead
        + est.flops * params.flop_cost
        + est.traffic_bytes * params.byte_cost;
    est
}

fn view_traffic(program: &Program, instr: &bh_ir::Instruction) -> u64 {
    let mut bytes = 0u64;
    for o in &instr.operands {
        if let Operand::View(v) = o {
            if let Ok(g) = program.resolve_view(v) {
                bytes += g.nelem() as u64 * program.base(v.reg).dtype.size_of() as u64;
            }
        }
    }
    bytes
}

fn linalg_flops(program: &Program, instr: &bh_ir::Instruction) -> u64 {
    let dims = |k: usize| -> (u64, u64) {
        instr.operands[k]
            .as_view()
            .and_then(|v| program.resolve_view(v).ok())
            .map(|g| {
                let s = g.shape();
                match s.rank() {
                    1 => (s.dim(0) as u64, 1),
                    2 => (s.dim(0) as u64, s.dim(1) as u64),
                    _ => (g.nelem() as u64, 1),
                }
            })
            .unwrap_or((0, 0))
    };
    match instr.op {
        Opcode::MatMul => {
            let (m, k) = dims(1);
            let (_, n) = dims(2);
            2 * m * k * n
        }
        Opcode::Inverse => {
            let (n, _) = dims(1);
            2 * n * n * n
        }
        Opcode::Solve => {
            let (n, _) = dims(1);
            let (_, k) = dims(2);
            2 * n * n * n / 3 + 2 * n * n * k
        }
        Opcode::Transpose => {
            let (m, n) = dims(1);
            m * n
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    fn cost_of(text: &str) -> CostEstimate {
        estimate(&parse_program(text).unwrap(), &CostParams::default())
    }

    #[test]
    fn listing3_cheaper_than_listing2() {
        let unopt = cost_of(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
             BH_SYNC a0\n",
        );
        let opt = cost_of(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 a0 3\n\
             BH_SYNC a0\n",
        );
        assert!(opt.time < unopt.time);
        assert_eq!(unopt.kernels - opt.kernels, 2);
        assert_eq!(unopt.bytecodes, 5);
        assert_eq!(opt.bytecodes, 3);
    }

    #[test]
    fn power_flops_dwarf_multiply_chain() {
        let power = cost_of(
            "BH_IDENTITY a0 [0:1000:1] 2\n\
             BH_POWER a1 [0:1000:1] a0 10\n\
             BH_SYNC a1\n",
        );
        let chain = cost_of(
            "BH_IDENTITY a0 [0:1000:1] 2\n\
             BH_MULTIPLY a1 [0:1000:1] a0 a0\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_MULTIPLY a1 a1 a0\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_SYNC a1\n",
        );
        assert!(chain.flops < power.flops);
        assert!(
            chain.time < power.time,
            "chain {} vs power {}",
            chain.time,
            power.time
        );
    }

    #[test]
    fn solve_cheaper_than_inverse_matmul() {
        let inverse = cost_of(
            ".base a f64[64,64] input\n.base b f64[64] input\n\
             .base t f64[64,64]\n.base x f64[64]\n\
             BH_INVERSE t a\n\
             BH_MATMUL x t b\n\
             BH_SYNC x\n",
        );
        let solve = cost_of(
            ".base a f64[64,64] input\n.base b f64[64] input\n\
             .base x f64[64]\n\
             BH_SOLVE x a b\n\
             BH_SYNC x\n",
        );
        assert!(solve.flops < inverse.flops);
        assert!(solve.time < inverse.time);
    }

    #[test]
    fn noop_costs_nothing() {
        let with = cost_of("BH_IDENTITY a0 [0:4:1] 1\nBH_NONE\nBH_SYNC a0\n");
        let without = cost_of("BH_IDENTITY a0 [0:4:1] 1\nBH_SYNC a0\n");
        assert_eq!(with, without);
    }

    #[test]
    fn reduction_costs_input_sized_work() {
        let c = cost_of(
            ".base m f64[100,100] input\n.base s f64[100]\n\
             BH_ADD_REDUCE s m 0\nBH_SYNC s\n",
        );
        assert!(c.flops >= 10_000);
    }

    #[test]
    fn relative_to() {
        let a = CostEstimate {
            time: 50,
            ..Default::default()
        };
        let b = CostEstimate {
            time: 100,
            ..Default::default()
        };
        assert_eq!(a.relative_to(&b), 0.5);
        assert_eq!(a.relative_to(&CostEstimate::default()), 1.0);
    }
}
