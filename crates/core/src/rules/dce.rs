//! Dead-code elimination.
//!
//! Removes pure byte-codes whose written value is never observed — e.g.
//! the two `BH_ADD`s left as `BH_NONE` by constant merging, or copies made
//! redundant by copy propagation. Observability follows the context's
//! [`LiveAtExit`] policy.
//!
//! [`LiveAtExit`]: crate::rule::LiveAtExit

use crate::rule::{LiveAtExit, RewriteCtx, RewriteRule};
use bh_ir::{Instruction, Liveness, OpKind, Program, Reg};

/// See the module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeadCodeElimination;

impl RewriteRule for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dead-code-elimination"
    }

    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        // Iterate to fixpoint internally: removing one dead store can kill
        // the stores feeding it.
        loop {
            let liveness = match ctx.live_at_exit {
                LiveAtExit::SyncedOnly => Liveness::compute(program),
                LiveAtExit::AllRegisters => {
                    let all: Vec<Reg> = (0..program.bases().len() as u32).map(Reg).collect();
                    Liveness::compute_with_exit(program, &all)
                }
            };
            let mut changed = false;
            for idx in 0..program.instrs().len() {
                let instr = &program.instrs()[idx];
                if instr.is_noop() || !is_pure(instr) {
                    continue;
                }
                if !liveness.write_is_live(program, idx) {
                    program.instrs_mut()[idx] = Instruction::noop();
                    applied += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        applied
    }
}

/// True for byte-codes with no effect beyond their output write.
fn is_pure(instr: &Instruction) -> bool {
    !matches!(instr.op.kind(), OpKind::System)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, Opcode};

    fn run(text: &str, ctx: &RewriteCtx) -> (Program, usize) {
        let mut p = parse_program(text).unwrap();
        let n = DeadCodeElimination.apply(&mut p, ctx);
        p.compact();
        (p, n)
    }

    #[test]
    fn unsynced_results_are_dead_under_synced_only() {
        let (p, n) = run(
            "BH_IDENTITY a [0:4:1] 1\n\
             BH_IDENTITY b [0:4:1] 2\n\
             BH_SYNC a\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert_eq!(p.instrs().len(), 2);
        assert_eq!(
            p.reg_by_name("b").map(|r| p.base(r).name.clone()).unwrap(),
            "b"
        );
    }

    #[test]
    fn all_registers_policy_keeps_results() {
        let ctx = RewriteCtx {
            live_at_exit: LiveAtExit::AllRegisters,
            ..RewriteCtx::default()
        };
        let (_, n) = run(
            "BH_IDENTITY a [0:4:1] 1\n\
             BH_IDENTITY b [0:4:1] 2\n\
             BH_SYNC a\n",
            &ctx,
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn overwritten_store_removed_under_both_policies() {
        for ctx in [
            RewriteCtx::default(),
            RewriteCtx {
                live_at_exit: LiveAtExit::AllRegisters,
                ..RewriteCtx::default()
            },
        ] {
            let (p, n) = run(
                "BH_IDENTITY a [0:4:1] 1\n\
                 BH_IDENTITY a [0:4:1] 2\n\
                 BH_SYNC a\n",
                &ctx,
            );
            assert_eq!(n, 1);
            assert_eq!(p.count_op(Opcode::Identity), 1);
        }
    }

    #[test]
    fn dead_chains_collapse_transitively() {
        // b feeds c, c feeds nothing observable: both die.
        let (p, n) = run(
            "BH_IDENTITY a [0:4:1] 1\n\
             BH_ADD b [0:4:1] a 1\n\
             BH_ADD c [0:4:1] b 1\n\
             BH_SYNC a\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 2);
        assert_eq!(p.count_op(Opcode::Add), 0);
    }

    #[test]
    fn partial_writes_survive() {
        let (_, n) = run(
            "BH_IDENTITY a [0:8:1] 1\n\
             BH_IDENTITY a [0:4:1] 2\n\
             BH_SYNC a\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0); // the full write is still partially visible
    }

    #[test]
    fn system_ops_never_removed() {
        let (p, n) = run(
            "BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\nBH_FREE a\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0);
        assert_eq!(p.instrs().len(), 3);
    }
}
