//! Copy propagation: route reads around `BH_IDENTITY` copies.
//!
//! After `BH_IDENTITY b a`, reads of `b` can read `a` directly (until
//! either register is rewritten). The copy itself then becomes dead and
//! falls to [`crate::rules::DeadCodeElimination`].

use crate::rule::{is_full_view, RewriteCtx, RewriteRule};
use bh_ir::{Opcode, Operand, Program, Reg, ViewRef};
use std::collections::HashMap;

/// See the module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct CopyPropagation;

impl RewriteRule for CopyPropagation {
    fn name(&self) -> &'static str {
        "copy-propagation"
    }

    fn apply(&self, program: &mut Program, _ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        // target reg -> source reg of a still-valid full copy
        let mut copies: HashMap<Reg, Reg> = HashMap::new();
        for idx in 0..program.instrs().len() {
            // 1. Rewrite this instruction's *input* full views through the
            //    copy map (output operands must keep their register).
            let mut replacements: Vec<(usize, Reg)> = Vec::new();
            {
                let instr = &program.instrs()[idx];
                // System ops (BH_SYNC/BH_FREE) *name* a register rather than
                // reading its value; rewriting them would change which
                // register is observable. Every other op's operand 0 is the
                // output, which must also keep its register.
                let first_input = if matches!(instr.op.kind(), bh_ir::OpKind::System) {
                    instr.operands.len()
                } else {
                    1
                };
                for (k, o) in instr.operands.iter().enumerate().skip(first_input) {
                    if let Operand::View(v) = o {
                        if let Some(&src) = copies.get(&v.reg) {
                            if v.is_syntactically_full() || is_full_view(program, v) {
                                replacements.push((k, src));
                            }
                        }
                    }
                }
            }
            if !replacements.is_empty() {
                let instr = &mut program.instrs_mut()[idx];
                for (k, src) in &replacements {
                    instr.operands[*k] = Operand::View(ViewRef::full(*src));
                }
                applied += replacements.len();
            }

            // 2. Update the copy map with this instruction's effect.
            let instr = &program.instrs()[idx];
            let out_reg = instr.out_reg();
            // Any write invalidates copies involving the written register.
            if let Some(w) = out_reg {
                copies.retain(|&dst, &mut src| dst != w && src != w);
            }
            // BH_FREE invalidates too: the source data is gone.
            if instr.op == Opcode::Free {
                if let Some(v) = instr.operands.first().and_then(|o| o.as_view()) {
                    let f = v.reg;
                    copies.retain(|&dst, &mut src| dst != f && src != f);
                }
            }
            // Record fresh full-view same-dtype copies.
            if instr.op == Opcode::Identity {
                if let (Some(out), Some(input)) = (instr.out_view(), instr.inputs()[0].as_view()) {
                    let same_dtype = program.base(out.reg).dtype == program.base(input.reg).dtype;
                    let same_shape = program.base(out.reg).shape == program.base(input.reg).shape;
                    if out.reg != input.reg
                        && same_dtype
                        && same_shape
                        && is_full_view(program, out)
                        && is_full_view(program, input)
                    {
                        copies.insert(out.reg, input.reg);
                    }
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, PrintStyle};

    fn run(text: &str) -> (Program, usize) {
        let mut p = parse_program(text).unwrap();
        let n = CopyPropagation.apply(&mut p, &RewriteCtx::default());
        (p, n)
    }

    #[test]
    fn reads_route_around_the_copy() {
        let (p, n) = run("BH_IDENTITY a [0:4:1] 5\n\
             BH_IDENTITY b [0:4:1] a\n\
             BH_ADD c [0:4:1] b b\n\
             BH_SYNC c\n");
        assert_eq!(n, 2);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_ADD c a a"), "{text}");
    }

    #[test]
    fn write_to_source_invalidates() {
        let (p, n) = run("BH_IDENTITY a [0:4:1] 5\n\
             BH_IDENTITY b [0:4:1] a\n\
             BH_IDENTITY a [0:4:1] 9\n\
             BH_ADD c [0:4:1] b b\n\
             BH_SYNC c\n");
        assert_eq!(n, 0);
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_ADD c b b"));
    }

    #[test]
    fn write_to_target_invalidates() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 5\n\
             BH_IDENTITY b [0:4:1] a\n\
             BH_ADD b [0:4:1] b 1\n\
             BH_ADD c [0:4:1] b b\n\
             BH_SYNC c\n");
        // The read inside `b = b + 1` is rewritten to `a` (valid: it reads
        // the copied value), but after that write, b's uses stay.
        assert_eq!(n, 1);
    }

    #[test]
    fn sliced_reads_not_propagated() {
        let (p, n) = run("BH_IDENTITY a [0:8:1] 5\n\
             BH_IDENTITY b [0:8:1] a\n\
             BH_ADD c [0:4:1] b [0:4:1] b [4:8:1]\n\
             BH_SYNC c\n");
        assert_eq!(n, 0);
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_ADD c b"));
    }

    #[test]
    fn cast_copies_not_propagated() {
        let (_, n) = run(".base a f64[4]\n.base b i32[4]\n.base c i32[4]\n\
             BH_IDENTITY a 5\n\
             BH_IDENTITY b a\n\
             BH_ADD c b b\n\
             BH_SYNC c\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn free_invalidates_source() {
        let (p, n) = run("BH_IDENTITY a [0:4:1] 5\n\
             BH_IDENTITY b [0:4:1] a\n\
             BH_FREE a\n\
             BH_ADD c [0:4:1] b b\n\
             BH_SYNC c\n");
        assert_eq!(n, 0);
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_ADD c b b"));
    }

    #[test]
    fn chains_of_copies_propagate_transitively() {
        let (p, _) = run("BH_IDENTITY a [0:4:1] 5\n\
             BH_IDENTITY b [0:4:1] a\n\
             BH_IDENTITY c [0:4:1] b\n\
             BH_ADD d [0:4:1] c c\n\
             BH_SYNC d\n");
        // c's copy source is rewritten to a, then d's reads chase to a.
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_IDENTITY c a"), "{text}");
        assert!(text.contains("BH_ADD d a a"), "{text}");
    }
}
