//! Strength reduction: replace expensive op-codes with cheaper equivalents.
//!
//! * `x · 2 → x + x` (exact for every dtype, IEEE included),
//! * float `x / 2ᵏ → x · 2⁻ᵏ` (exact: the reciprocal of a power of two is
//!   representable),
//! * unsigned `x / 2ᵏ → x ≫ k`,
//! * `x − x → 0` and `x ⊻ x → 0` (integer exact; float `x−x` gated on
//!   `fast_math` because `∞ − ∞ = NaN`).

use crate::rule::{reassoc_allowed, views_equivalent, RewriteCtx, RewriteRule};
use bh_ir::{Instruction, Opcode, Operand, Program};
use bh_tensor::Scalar;

/// See the module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct StrengthReduction;

impl RewriteRule for StrengthReduction {
    fn name(&self) -> &'static str {
        "strength-reduction"
    }

    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        for idx in 0..program.instrs().len() {
            if let Some(replacement) = reduce(program, idx, ctx) {
                program.instrs_mut()[idx] = replacement;
                applied += 1;
            }
        }
        applied
    }
}

fn reduce(program: &Program, idx: usize, ctx: &RewriteCtx) -> Option<Instruction> {
    let instr = &program.instrs()[idx];
    if !instr.op.is_elementwise() || instr.op.arity() != 2 {
        return None;
    }
    let out = instr.out_view()?.clone();
    let dtype = program.base(out.reg).dtype;

    // x ⊖ x patterns.
    if let (Some(a), Some(b)) = (instr.inputs()[0].as_view(), instr.inputs()[1].as_view()) {
        if views_equivalent(program, a, b) {
            match instr.op {
                Opcode::Subtract if reassoc_allowed(ctx, dtype) => {
                    return Some(Instruction::unary(
                        Opcode::Identity,
                        out,
                        Operand::Const(Scalar::zero(dtype)),
                    ));
                }
                Opcode::BitwiseXor if !dtype.is_float() => {
                    return Some(Instruction::unary(
                        Opcode::Identity,
                        out,
                        Operand::Const(Scalar::zero(dtype)),
                    ));
                }
                _ => {}
            }
        }
    }

    let (const_pos, c) = instr.sole_const_input()?;
    let other = instr.inputs()[1 - const_pos].clone();
    let c_typed = c.cast(dtype);

    match instr.op {
        // x · 2 → x + x (constant on either side).
        Opcode::Multiply if c_typed.as_integral() == Some(2) => {
            Some(Instruction::binary(Opcode::Add, out, other.clone(), other))
        }
        // Divisions by powers of two, constant on the right only.
        Opcode::Divide if const_pos == 1 => {
            if dtype.is_float() {
                let v = c_typed.as_f64();
                if v != 0.0 && v.abs().log2().fract() == 0.0 {
                    return Some(Instruction::binary(
                        Opcode::Multiply,
                        out,
                        other,
                        Operand::Const(Scalar::from_f64(1.0 / v, dtype)),
                    ));
                }
                None
            } else if dtype.is_unsigned_integer() {
                let v = c_typed.as_integral()?;
                if v > 0 && (v as u64).is_power_of_two() {
                    let k = (v as u64).trailing_zeros() as i64;
                    return Some(Instruction::binary(
                        Opcode::RightShift,
                        out,
                        other,
                        Operand::Const(Scalar::from_i64(k, dtype)),
                    ));
                }
                None
            } else {
                // Signed division rounds toward zero; shifting rounds
                // toward −∞. Not equivalent for negatives — leave it.
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, PrintStyle};

    fn run(text: &str) -> (Program, usize) {
        let mut p = parse_program(text).unwrap();
        let n = StrengthReduction.apply(&mut p, &RewriteCtx::default());
        (p, n)
    }

    #[test]
    fn multiply_by_two_becomes_add() {
        let (p, n) = run("BH_IDENTITY a [0:4:1] 3\nBH_MULTIPLY a a 2\nBH_SYNC a\n");
        assert_eq!(n, 1);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_ADD a a a"), "{text}");
    }

    #[test]
    fn float_divide_by_power_of_two_becomes_multiply() {
        let (p, n) = run("BH_IDENTITY a [0:4:1] 3\nBH_DIVIDE a a 8\nBH_SYNC a\n");
        assert_eq!(n, 1);
        assert!(p
            .to_text(PrintStyle::COMPACT)
            .contains("BH_MULTIPLY a a 0.125"));
    }

    #[test]
    fn float_divide_by_three_is_kept() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 3\nBH_DIVIDE a a 3\nBH_SYNC a\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn unsigned_divide_becomes_shift() {
        let (p, n) = run(".base a u32[4]\nBH_IDENTITY a 64\nBH_DIVIDE a a 16\nBH_SYNC a\n");
        assert_eq!(n, 1);
        assert!(p
            .to_text(PrintStyle::COMPACT)
            .contains("BH_RIGHT_SHIFT a a 4"));
    }

    #[test]
    fn signed_divide_is_kept() {
        let (_, n) = run(".base a i32[4]\nBH_IDENTITY a -7\nBH_DIVIDE a a 4\nBH_SYNC a\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn constant_on_the_left_of_divide_is_kept() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 3\nBH_DIVIDE a 8 a\nBH_SYNC a\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn self_subtract_and_xor_fold_to_zero() {
        let (p, n) = run(".base a i64[4]\n.base z i64[4]\n.base w i64[4]\n\
             BH_IDENTITY a 9\n\
             BH_SUBTRACT z a a\n\
             BH_BITWISE_XOR w a a\n\
             BH_SYNC z\nBH_SYNC w\n");
        assert_eq!(n, 2);
        assert_eq!(p.count_op(Opcode::Subtract), 0);
        assert_eq!(p.count_op(Opcode::BitwiseXor), 0);
    }

    #[test]
    fn float_self_subtract_gated_by_fast_math() {
        let mut p =
            parse_program("BH_IDENTITY a [0:4:1] 9\nBH_SUBTRACT z [0:4:1] a a\nBH_SYNC z\n")
                .unwrap();
        let strict = RewriteCtx {
            fast_math: false,
            ..RewriteCtx::default()
        };
        assert_eq!(StrengthReduction.apply(&mut p, &strict), 0);
        assert_eq!(StrengthReduction.apply(&mut p, &RewriteCtx::default()), 1);
    }

    #[test]
    fn multiply_by_other_constants_kept() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 3\nBH_MULTIPLY a a 3\nBH_SYNC a\n");
        assert_eq!(n, 0);
    }
}
