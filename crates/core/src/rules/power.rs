//! Power ↔ multiply-chain transformations (Eq. 1 of the paper).
//!
//! [`PowerExpansion`] rewrites `BH_POWER out in n` (integral `n`) into the
//! optimal doubling/increment multiply schedule of [`crate::chains`],
//! honouring §3.1's constraint that only the origin and result registers
//! may be touched. "Bohrium … does power expansion by default, since
//! benchmarks have shown that for values close to a power of 2,
//! multiplying multiple times is faster than doing an actual BH_POWER"
//! (§4).
//!
//! [`MultiplyChainReroll`] is the "or vice versa" direction: a run of
//! multiplies recognised as computing `x^n` is re-rolled into one
//! `BH_POWER` — which [`PowerExpansion`] may then re-expand into a
//! *shorter* chain. Together they canonicalise Listing 4 (nine multiplies)
//! into the optimal four-multiply schedule.

use crate::chains::{optimal_chain, optimal_multiplies, ChainStep};
use crate::rule::{reassoc_allowed, views_equivalent, RewriteCtx, RewriteRule};
use bh_ir::{Instruction, Opcode, Operand, Program, ViewRef};
use bh_tensor::Scalar;

/// Expand `BH_POWER` with an integral exponent into multiplies. See the
/// module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct PowerExpansion;

impl RewriteRule for PowerExpansion {
    fn name(&self) -> &'static str {
        "power-expansion"
    }

    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        let mut idx = 0;
        while idx < program.instrs().len() {
            if let Some(expansion) = match_power(program, idx, ctx) {
                let tail = program.instrs_mut().split_off(idx + 1);
                program.instrs_mut().pop(); // the BH_POWER itself
                program.instrs_mut().extend(expansion.iter().cloned());
                program.instrs_mut().extend(tail);
                idx += expansion.len();
                applied += 1;
            } else {
                idx += 1;
            }
        }
        applied
    }
}

fn match_power(program: &Program, idx: usize, ctx: &RewriteCtx) -> Option<Vec<Instruction>> {
    let instr = &program.instrs()[idx];
    if instr.op != Opcode::Power {
        return None;
    }
    let out = instr.out_view()?.clone();
    let base = instr.inputs()[0].as_view()?.clone();
    let dtype = program.base(out.reg).dtype;
    // The VM casts constants into the element dtype before the op, so the
    // exponent must be read post-cast: `BH_POWER x 257` on u8 is x^1.
    let n = instr.inputs()[1].as_const()?.cast(dtype).as_integral()?;
    if n < 0 {
        return None; // reciprocal powers stay with the intrinsic
    }
    if !reassoc_allowed(ctx, dtype) {
        return None; // float chains round differently under strict IEEE
    }
    let n = n as u64;
    if n == 0 {
        // x^0 == 1 for every element (pow(0,0) == 1 in the VM and IEEE).
        return Some(vec![Instruction::unary(
            Opcode::Identity,
            out,
            Operand::Const(Scalar::one(dtype)),
        )]);
    }
    if n == 1 {
        return Some(vec![Instruction::unary(Opcode::Identity, out, base)]);
    }
    if out.reg == base.reg {
        // In-place x = x^n: the origin is destroyed by the first write, so
        // only pure-squaring schedules (n a power of two) are expressible
        // without the temporaries §3.1 rules out.
        if !n.is_power_of_two() || !views_equivalent(program, &out, &base) {
            return None;
        }
        let k = n.trailing_zeros() as usize;
        if k > ctx.max_power_multiplies {
            return None;
        }
        let sq = Instruction::binary(Opcode::Multiply, out.clone(), base.clone(), base);
        return Some(vec![sq; k]);
    }
    let chain = optimal_chain(n)?;
    if chain.multiplies() > ctx.max_power_multiplies {
        return None;
    }
    let mut seq = Vec::with_capacity(chain.multiplies());
    for step in &chain.steps {
        let (a, b) = match step {
            ChainStep::SquareOrigin => (base.clone(), base.clone()),
            ChainStep::SquareAcc => (out.clone(), out.clone()),
            ChainStep::MulOrigin => (out.clone(), base.clone()),
        };
        seq.push(Instruction::binary(Opcode::Multiply, out.clone(), a, b));
    }
    Some(seq)
}

/// Re-roll a recognised multiply chain back into one `BH_POWER`. Fires only
/// when the chain is *longer* than the optimal schedule for its exponent,
/// so expansion ∘ re-roll terminates (every fixpoint chain is optimal).
#[derive(Debug, Default, Clone, Copy)]
pub struct MultiplyChainReroll;

impl RewriteRule for MultiplyChainReroll {
    fn name(&self) -> &'static str {
        "multiply-chain-reroll"
    }

    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        let mut idx = 0;
        while idx < program.instrs().len() {
            if let Some((len, exponent)) = match_chain(program, idx, ctx) {
                let acc = program.instrs()[idx]
                    .out_view()
                    .expect("chain head is a multiply")
                    .clone();
                let origin = program.instrs()[idx].inputs()[0]
                    .as_view()
                    .expect("chain head reads the origin")
                    .clone();
                let dtype = program.base(acc.reg).dtype;
                program.instrs_mut()[idx] = Instruction::binary(
                    Opcode::Power,
                    acc,
                    origin,
                    Operand::Const(Scalar::from_i64(exponent as i64, dtype)),
                );
                for k in idx + 1..idx + len {
                    program.instrs_mut()[k] = Instruction::noop();
                }
                applied += 1;
                idx += len;
            } else {
                idx += 1;
            }
        }
        applied
    }
}

/// Match a maximal chain starting at `idx`: `acc = origin·origin` followed
/// by consecutive `acc = acc·acc` / `acc = acc·origin`. Returns
/// `(instruction_count, exponent)` when re-rolling strictly improves.
fn match_chain(program: &Program, idx: usize, ctx: &RewriteCtx) -> Option<(usize, u64)> {
    let instrs = program.instrs();
    let head = &instrs[idx];
    if head.op != Opcode::Multiply {
        return None;
    }
    let acc = head.out_view()?;
    let a = head.inputs()[0].as_view()?;
    let b = head.inputs()[1].as_view()?;
    // Head must be acc = origin · origin with acc ≠ origin.
    if a.reg == acc.reg || !views_equivalent(program, a, b) {
        return None;
    }
    let origin = a.clone();
    let dtype = program.base(acc.reg).dtype;
    if !reassoc_allowed(ctx, dtype) || program.base(origin.reg).dtype != dtype {
        return None;
    }
    let mut exponent: u64 = 2;
    let mut len = 1;
    for instr in &instrs[idx + 1..] {
        if instr.op != Opcode::Multiply {
            break;
        }
        let Some(out) = instr.out_view() else { break };
        if !views_equivalent(program, out, acc) {
            break;
        }
        let (Some(x), Some(y)) = (instr.inputs()[0].as_view(), instr.inputs()[1].as_view()) else {
            break;
        };
        let is_acc = |v: &ViewRef| views_equivalent(program, v, acc);
        let is_origin = |v: &ViewRef| views_equivalent(program, v, &origin);
        if is_acc(x) && is_acc(y) {
            exponent = exponent.checked_mul(2)?;
        } else if (is_acc(x) && is_origin(y)) || (is_origin(x) && is_acc(y)) {
            exponent = exponent.checked_add(1)?;
        } else {
            break;
        }
        len += 1;
    }
    // The emitted constant is cast into the element dtype by the VM: an
    // exponent the dtype cannot represent would silently wrap (257 → 1 in
    // u8, turning x²⁵⁷ into x¹), so the chain must stay unrolled.
    let encoded = i64::try_from(exponent).ok()?;
    if Scalar::from_i64(encoded, dtype).as_integral() != Some(encoded) {
        return None;
    }
    // Strict improvement only (termination of the expand/re-roll pair).
    let optimal = optimal_multiplies(exponent)?;
    if len as u64 > optimal && optimal <= ctx.max_power_multiplies as u64 {
        Some((len, exponent))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, PrintStyle};

    fn expand(text: &str) -> Program {
        let mut p = parse_program(text).unwrap();
        PowerExpansion.apply(&mut p, &RewriteCtx::default());
        p.compact();
        p
    }

    #[test]
    fn x_pow_10_expands_to_four_multiplies() {
        let p = expand(
            "BH_IDENTITY a0 [0:100:1] 2\n\
             BH_POWER a1 [0:100:1] a0 [0:100:1] 10\n\
             BH_SYNC a1\n",
        );
        assert_eq!(p.count_op(Opcode::Power), 0);
        assert_eq!(p.count_op(Opcode::Multiply), 4);
        // Chain structure: a1=a0·a0, a1=a1·a1, a1=a1·a0, a1=a1·a1.
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_MULTIPLY a1 a0 a0"), "{text}");
    }

    #[test]
    fn exponent_zero_and_one() {
        let p = expand(
            "BH_IDENTITY a0 [0:4:1] 3\n\
             BH_POWER a1 [0:4:1] a0 0\n\
             BH_POWER a2 [0:4:1] a0 1\n\
             BH_SYNC a1\nBH_SYNC a2\n",
        );
        assert_eq!(p.count_op(Opcode::Power), 0);
        assert_eq!(p.count_op(Opcode::Multiply), 0);
        assert_eq!(p.count_op(Opcode::Identity), 3);
    }

    #[test]
    fn in_place_power_of_two_expands_to_squarings() {
        let p = expand(
            "BH_IDENTITY a0 [0:4:1] 3\n\
             BH_POWER a0 a0 8\n\
             BH_SYNC a0\n",
        );
        assert_eq!(p.count_op(Opcode::Power), 0);
        assert_eq!(p.count_op(Opcode::Multiply), 3); // x²,x⁴,x⁸ in place
    }

    #[test]
    fn in_place_non_power_of_two_is_kept() {
        let p = expand(
            "BH_IDENTITY a0 [0:4:1] 3\n\
             BH_POWER a0 a0 10\n\
             BH_SYNC a0\n",
        );
        assert_eq!(p.count_op(Opcode::Power), 1);
    }

    #[test]
    fn negative_and_fractional_exponents_kept() {
        let p = expand(
            "BH_IDENTITY a0 [0:4:1] 3\n\
             BH_POWER a1 [0:4:1] a0 -2\n\
             BH_POWER a2 [0:4:1] a0 2.5\n\
             BH_SYNC a1\nBH_SYNC a2\n",
        );
        assert_eq!(p.count_op(Opcode::Power), 2);
    }

    #[test]
    fn exponent_budget_respected() {
        let mut p = parse_program(
            "BH_IDENTITY a0 [0:4:1] 2\n\
             BH_POWER a1 [0:4:1] a0 1000000\n\
             BH_SYNC a1\n",
        )
        .unwrap();
        let ctx = RewriteCtx {
            max_power_multiplies: 8,
            ..RewriteCtx::default()
        };
        assert_eq!(PowerExpansion.apply(&mut p, &ctx), 0);
        assert_eq!(p.count_op(Opcode::Power), 1);
    }

    #[test]
    fn strict_ieee_keeps_float_power() {
        let mut p = parse_program(
            "BH_IDENTITY a0 [0:4:1] 2\n\
             BH_POWER a1 [0:4:1] a0 10\n\
             BH_SYNC a1\n",
        )
        .unwrap();
        let strict = RewriteCtx {
            fast_math: false,
            ..RewriteCtx::default()
        };
        assert_eq!(PowerExpansion.apply(&mut p, &strict), 0);
        // ... but expands integer powers even under strict IEEE.
        let mut p = parse_program(
            ".base a0 i64[4]\n.base a1 i64[4]\n\
             BH_IDENTITY a0 2\n\
             BH_POWER a1 a0 10\n\
             BH_SYNC a1\n",
        )
        .unwrap();
        assert_eq!(PowerExpansion.apply(&mut p, &strict), 1);
    }

    #[test]
    fn exponent_wider_than_dtype_expands_post_cast() {
        // On u8 the VM casts 257 → 1, so `x^257` is really `x^1`: the
        // expansion must emit the identity, not a 257-chain.
        let p = expand(
            ".base a0 u8[4]\n.base a1 u8[4]\n\
             BH_IDENTITY a0 2\n\
             BH_POWER a1 a0 257\n\
             BH_SYNC a1\n",
        );
        assert_eq!(p.count_op(Opcode::Power), 0);
        assert_eq!(p.count_op(Opcode::Multiply), 0);
        assert_eq!(p.count_op(Opcode::Identity), 2);
    }

    #[test]
    fn reroll_keeps_chains_whose_exponent_wraps_in_dtype() {
        // A 256-long u8 multiply chain computes x^257; `BH_POWER a1 a0 257`
        // would wrap the constant to 1 in the VM. The re-roll must decline.
        let mut text = String::from(
            ".base a0 u8[4]\n.base a1 u8[4]\n\
             BH_IDENTITY a0 2\nBH_MULTIPLY a1 a0 a0\n",
        );
        for _ in 0..255 {
            text.push_str("BH_MULTIPLY a1 a1 a0\n");
        }
        text.push_str("BH_SYNC a1\n");
        let mut p = parse_program(&text).unwrap();
        assert_eq!(MultiplyChainReroll.apply(&mut p, &RewriteCtx::default()), 0);
        assert_eq!(p.count_op(Opcode::Power), 0);
    }

    #[test]
    fn listing4_rerolls_then_expands_to_optimal() {
        // Listing 4: x^10 as nine multiplies.
        let mut text = String::from("BH_IDENTITY a0 [0:100:1] 2\nBH_MULTIPLY a1 [0:100:1] a0 a0\n");
        for _ in 0..8 {
            text.push_str("BH_MULTIPLY a1 a1 a0\n");
        }
        text.push_str("BH_SYNC a1\n");
        let mut p = parse_program(&text).unwrap();
        let ctx = RewriteCtx::default();
        assert_eq!(MultiplyChainReroll.apply(&mut p, &ctx), 1);
        p.compact();
        assert_eq!(p.count_op(Opcode::Power), 1);
        assert_eq!(p.count_op(Opcode::Multiply), 0);
        // Now expansion produces the optimal 4-multiply schedule (one
        // better than the paper's Listing 5).
        assert_eq!(PowerExpansion.apply(&mut p, &ctx), 1);
        p.compact();
        assert_eq!(p.count_op(Opcode::Multiply), 4);
    }

    #[test]
    fn optimal_chain_is_a_reroll_fixpoint() {
        let mut p = parse_program(
            "BH_IDENTITY a0 [0:4:1] 2\n\
             BH_MULTIPLY a1 [0:4:1] a0 a0\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_MULTIPLY a1 a1 a0\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_SYNC a1\n",
        )
        .unwrap();
        assert_eq!(MultiplyChainReroll.apply(&mut p, &RewriteCtx::default()), 0);
    }

    #[test]
    fn unrelated_multiplies_not_rerolled() {
        let mut p = parse_program(
            "BH_IDENTITY a0 [0:4:1] 2\n\
             BH_IDENTITY b0 [0:4:1] 3\n\
             BH_MULTIPLY c0 [0:4:1] a0 b0\n\
             BH_MULTIPLY c0 c0 b0\n\
             BH_SYNC c0\n",
        )
        .unwrap();
        assert_eq!(MultiplyChainReroll.apply(&mut p, &RewriteCtx::default()), 0);
    }

    #[test]
    fn paper_listing5_rerolls_to_power() {
        // The paper's 5-multiply schedule is one worse than optimal, so the
        // re-roll fires and expansion re-emits the 4-multiply schedule.
        let mut p = parse_program(
            "BH_IDENTITY a0 [0:4:1] 2\n\
             BH_MULTIPLY a1 [0:4:1] a0 a0\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_MULTIPLY a1 a1 a0\n\
             BH_MULTIPLY a1 a1 a0\n\
             BH_SYNC a1\n",
        )
        .unwrap();
        let ctx = RewriteCtx::default();
        assert_eq!(MultiplyChainReroll.apply(&mut p, &ctx), 1);
        p.compact();
        PowerExpansion.apply(&mut p, &ctx);
        p.compact();
        assert_eq!(p.count_op(Opcode::Multiply), 4);
    }
}
