//! Common-subexpression elimination over element-wise byte-codes.
//!
//! Two identical pure computations whose inputs are unchanged in between
//! compute the same tensor; the second becomes a `BH_IDENTITY` copy of the
//! first result (which copy-propagation and DCE then shrink further).

use crate::rule::{RewriteCtx, RewriteRule};
use bh_ir::{Instruction, Opcode, Operand, Program, Reg, ViewRef};
use std::collections::HashMap;

/// See the module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct CommonSubexpression;

impl RewriteRule for CommonSubexpression {
    fn name(&self) -> &'static str {
        "common-subexpression"
    }

    fn apply(&self, program: &mut Program, _ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        // expression key -> (defining instruction, its output view)
        let mut available: HashMap<String, ViewRef> = HashMap::new();
        // reg -> keys that mention it (for invalidation)
        let mut mentions: HashMap<Reg, Vec<String>> = HashMap::new();

        for idx in 0..program.instrs().len() {
            let instr = &program.instrs()[idx];

            // Replace a recomputation with a copy of the available value.
            let key = expression_key(instr);
            let mut replaced = false;
            if let (Some(k), Some(out)) = (&key, instr.out_view()) {
                if let Some(prev_out) = available.get(k) {
                    let same_dtype =
                        program.base(out.reg).dtype == program.base(prev_out.reg).dtype;
                    // Writing over one of our own inputs would also
                    // invalidate the availability; requiring a distinct
                    // output register keeps this simple and sound.
                    if same_dtype && out.reg != prev_out.reg {
                        let out = out.clone();
                        let prev = prev_out.clone();
                        program.instrs_mut()[idx] =
                            Instruction::unary(Opcode::Identity, out, Operand::View(prev));
                        applied += 1;
                        replaced = true;
                    }
                }
            }

            // Invalidate everything mentioning the written register.
            let instr = &program.instrs()[idx];
            if let Some(w) = instr.out_reg() {
                if let Some(keys) = mentions.remove(&w) {
                    for k in keys {
                        available.remove(&k);
                    }
                }
                // Keys whose *result* register is overwritten die too; the
                // mentions map covers them because the key string embeds
                // the output register (see expression_key) — but the
                // available map is keyed on inputs only, so sweep it.
                available.retain(|_, v| v.reg != w);
            }

            // Record this computation as available.
            if !replaced {
                if let (Some(k), Some(out)) = (
                    expression_key(&program.instrs()[idx]),
                    program.instrs()[idx].out_view(),
                ) {
                    let out = out.clone();
                    for r in program.instrs()[idx].input_regs() {
                        mentions.entry(r).or_default().push(k.clone());
                    }
                    available.insert(k, out);
                }
            }
        }
        applied
    }
}

/// Canonical key of a pure element-wise computation: op + input operands.
/// `None` for non-elementwise or effectful instructions. Commutative ops
/// sort their operands so `a+b` and `b+a` share a key.
fn expression_key(instr: &Instruction) -> Option<String> {
    if !instr.op.is_elementwise() || instr.op == Opcode::Identity {
        return None;
    }
    // Exclude self-referencing computations (out aliases an input): their
    // value depends on the pre-instruction content, which the key cannot
    // capture.
    let out = instr.out_reg()?;
    if instr.reads(out) {
        return None;
    }
    let mut parts: Vec<String> = instr.inputs().iter().map(|o| format!("{o}")).collect();
    if instr.op.is_commutative() {
        parts.sort();
    }
    Some(format!("{} {}", instr.op, parts.join(" ")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, PrintStyle};

    fn run(text: &str) -> (Program, usize) {
        let mut p = parse_program(text).unwrap();
        let n = CommonSubexpression.apply(&mut p, &RewriteCtx::default());
        (p, n)
    }

    #[test]
    fn duplicate_computation_becomes_copy() {
        let (p, n) = run("BH_IDENTITY a [0:4:1] 3\n\
             BH_MULTIPLY x [0:4:1] a a\n\
             BH_MULTIPLY y [0:4:1] a a\n\
             BH_SYNC x\nBH_SYNC y\n");
        assert_eq!(n, 1);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_IDENTITY y x"), "{text}");
    }

    #[test]
    fn commutative_operands_match_in_either_order() {
        let (p, n) = run("BH_IDENTITY a [0:4:1] 3\n\
             BH_IDENTITY b [0:4:1] 4\n\
             BH_ADD x [0:4:1] a b\n\
             BH_ADD y [0:4:1] b a\n\
             BH_SYNC x\nBH_SYNC y\n");
        assert_eq!(n, 1);
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_IDENTITY y x"));
    }

    #[test]
    fn non_commutative_order_matters() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 3\n\
             BH_IDENTITY b [0:4:1] 4\n\
             BH_SUBTRACT x [0:4:1] a b\n\
             BH_SUBTRACT y [0:4:1] b a\n\
             BH_SYNC x\nBH_SYNC y\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn intervening_write_invalidates() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 3\n\
             BH_MULTIPLY x [0:4:1] a a\n\
             BH_ADD a a 1\n\
             BH_MULTIPLY y [0:4:1] a a\n\
             BH_SYNC x\nBH_SYNC y\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn overwritten_result_invalidates() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 3\n\
             BH_MULTIPLY x [0:4:1] a a\n\
             BH_IDENTITY x 0\n\
             BH_MULTIPLY y [0:4:1] a a\n\
             BH_SYNC x\nBH_SYNC y\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn self_updates_never_keyed() {
        // a = a + 1 twice is NOT the same value twice.
        let (_, n) = run("BH_IDENTITY a [0:4:1] 0\n\
             BH_ADD a a 1\n\
             BH_ADD a a 1\n\
             BH_SYNC a\n");
        assert_eq!(n, 0);
    }

    #[test]
    fn constants_participate_in_keys() {
        let (_, n) = run("BH_IDENTITY a [0:4:1] 3\n\
             BH_ADD x [0:4:1] a 1\n\
             BH_ADD y [0:4:1] a 2\n\
             BH_SYNC x\nBH_SYNC y\n");
        assert_eq!(n, 0); // different constants, different expressions
    }

    #[test]
    fn sliced_views_distinguish_expressions() {
        let (_, n) = run("BH_IDENTITY a [0:8:1] 3\n\
             BH_MULTIPLY x [0:4:1] a [0:4:1] a [0:4:1]\n\
             BH_MULTIPLY y [0:4:1] a [4:8:1] a [4:8:1]\n\
             BH_SYNC x\nBH_SYNC y\n");
        assert_eq!(n, 0);
    }
}
