//! Constant merging: the paper's Listing 2 → Listing 3 transformation.
//!
//! ```text
//! BH_ADD a0 a0 1        BH_ADD a0 a0 3
//! BH_ADD a0 a0 1   ⇒    (the two other adds removed)
//! BH_ADD a0 a0 1
//! ```
//!
//! "the constants of the three byte-codes can be merged into one by simply
//! adding them together" (§3.1). Generalised here to every associative
//! op-code with a constant operand (`x·c₁·c₂ → x·(c₁c₂)`, min/max chains,
//! bitwise chains), plus the `Subtract`/`Divide` right-constant chains
//! (`(x−c₁)−c₂ → x−(c₁+c₂)`).

use crate::fold::const_eval;
use crate::rule::{reassoc_allowed, views_equivalent, RewriteCtx, RewriteRule};
use bh_ir::{DefUse, Instruction, Opcode, Operand, Program};

/// See the module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstantMerge;

impl RewriteRule for ConstantMerge {
    fn name(&self) -> &'static str {
        "constant-merge"
    }

    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        loop {
            let du = DefUse::compute(program);
            let Some((i, j, merged)) = find_merge(program, &du, ctx) else {
                break;
            };
            // i: r = src ⊕ c1   (dropped)
            // j: r = r ⊕ c2     (becomes r = src ⊕ merged)
            let src = program.instrs()[i].inputs()[src_index(&program.instrs()[i])].clone();
            let instr_j = &mut program.instrs_mut()[j];
            let const_pos = 1 + instr_j
                .sole_const_input()
                .expect("matched pattern has a constant")
                .0;
            let view_pos = if const_pos == 1 { 2 } else { 1 };
            instr_j.operands[view_pos] = src;
            instr_j.operands[const_pos] = Operand::Const(merged);
            program.instrs_mut()[i] = Instruction::noop();
            applied += 1;
        }
        applied
    }
}

/// Index (within `inputs()`) of the non-constant operand of a matched
/// first instruction.
fn src_index(instr: &Instruction) -> usize {
    let (const_pos, _) = instr.sole_const_input().expect("matched pattern");
    1 - const_pos
}

/// Find one mergeable pair `(i, j, folded_constant)`.
fn find_merge(
    program: &Program,
    du: &DefUse,
    ctx: &RewriteCtx,
) -> Option<(usize, usize, bh_tensor::Scalar)> {
    (0..program.instrs().len()).find_map(|j| try_merge_at(program, du, ctx, j))
}

/// Check whether the instruction at `j` can absorb the constant of the
/// nearest earlier definition of its register.
fn try_merge_at(
    program: &Program,
    du: &DefUse,
    ctx: &RewriteCtx,
    j: usize,
) -> Option<(usize, usize, bh_tensor::Scalar)> {
    let instrs = program.instrs();
    let b = &instrs[j];
    if !mergeable_shape(b) {
        return None;
    }
    let out_b = b.out_view().expect("binary ops have outputs");
    let (cb_pos, cb) = b.sole_const_input().expect("mergeable_shape checked");
    // The non-const input must read the same view the instruction writes
    // (r = r ⊕ c), anchoring the chain on register r.
    let vb = b.inputs()[1 - cb_pos].as_view()?;
    if !views_equivalent(program, out_b, vb) || !const_position_ok(b.op, cb_pos) {
        return None;
    }
    let dtype = program.base(out_b.reg).dtype;
    if !reassoc_allowed(ctx, dtype) {
        return None;
    }
    // Nearest earlier definition of r.
    let i = *du.defs(out_b.reg).iter().rfind(|&&d| d < j)?;
    let a = &instrs[i];
    if a.op != b.op || !mergeable_shape(a) {
        return None;
    }
    let out_a = a.out_view().expect("binary ops have outputs");
    if !views_equivalent(program, out_a, out_b) {
        return None;
    }
    let (ca_pos, ca) = a.sole_const_input().expect("mergeable_shape checked");
    if !const_position_ok(a.op, ca_pos) {
        return None;
    }
    // Nothing may observe r strictly between i and j, and the source
    // operand of i must not be redefined in between.
    if du.read_between(out_b.reg, i, j) || du.written_between(out_b.reg, i, j) {
        return None;
    }
    if let Some(src) = a.inputs()[1 - ca_pos].as_view() {
        if du.written_between(src.reg, i, j) {
            return None;
        }
    }
    // Fold: for Add/Mul chains the constants combine with the same op; for
    // Subtract/Divide right-chains they combine with Add/Mul. Bool
    // subtract is XOR — its own inverse — so the chain folds with XOR
    // itself, never with Add (which is OR on bool).
    let fold_op = match a.op {
        Opcode::Subtract if dtype == bh_tensor::DType::Bool => Opcode::Subtract,
        Opcode::Subtract => Opcode::Add,
        Opcode::Divide => Opcode::Multiply,
        op => op,
    };
    let merged = const_eval(fold_op, ca, cb, dtype)?;
    Some((i, j, merged))
}

/// Binary element-wise with exactly one constant input and an associative
/// (or right-chainable) op.
fn mergeable_shape(instr: &Instruction) -> bool {
    let op_ok = instr.op.is_associative() || matches!(instr.op, Opcode::Subtract | Opcode::Divide);
    op_ok
        && instr.op.is_elementwise()
        && instr.op.arity() == 2
        && instr.sole_const_input().is_some()
}

/// For non-commutative chain ops the constant must be the right operand.
fn const_position_ok(op: Opcode, const_input_index: usize) -> bool {
    if matches!(op, Opcode::Subtract | Opcode::Divide) {
        const_input_index == 1
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, PrintStyle};

    fn optimize_text(text: &str, ctx: &RewriteCtx) -> (Program, usize) {
        let mut p = parse_program(text).unwrap();
        let n = ConstantMerge.apply(&mut p, ctx);
        p.compact();
        (p, n)
    }

    const LISTING2: &str = "\
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
";

    #[test]
    fn listing2_becomes_listing3() {
        let (p, n) = optimize_text(LISTING2, &RewriteCtx::default());
        assert_eq!(n, 2);
        assert_eq!(p.count_op(Opcode::Add), 1);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_ADD a0 a0 3"), "{text}");
    }

    #[test]
    fn strict_ieee_blocks_float_merge_but_not_int() {
        let strict = RewriteCtx {
            fast_math: false,
            ..RewriteCtx::default()
        };
        let (_, n) = optimize_text(LISTING2, &strict); // f64 adds
        assert_eq!(n, 0);
        let (p, n) = optimize_text(
            ".base a0 i64[10]\n\
             BH_IDENTITY a0 0\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_SYNC a0\n",
            &strict,
        );
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::Add), 1);
    }

    #[test]
    fn multiply_chain_merges() {
        let (p, n) = optimize_text(
            "BH_IDENTITY a0 [0:4:1] 1\n\
             BH_MULTIPLY a0 a0 2\nBH_MULTIPLY a0 a0 3\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert!(p
            .to_text(PrintStyle::COMPACT)
            .contains("BH_MULTIPLY a0 a0 6"));
    }

    #[test]
    fn subtract_chain_adds_constants() {
        let (p, _) = optimize_text(
            "BH_IDENTITY a0 [0:4:1] 10\n\
             BH_SUBTRACT a0 a0 2\nBH_SUBTRACT a0 a0 3\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert!(p
            .to_text(PrintStyle::COMPACT)
            .contains("BH_SUBTRACT a0 a0 5"));
    }

    #[test]
    fn left_constant_subtract_is_not_merged() {
        // c - (c - x) is not (c1+c2) - x; the rule must skip it.
        let (p, n) = optimize_text(
            "BH_IDENTITY a0 [0:4:1] 1\n\
             BH_SUBTRACT a0 10 a0\nBH_SUBTRACT a0 20 a0\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0);
        assert_eq!(p.count_op(Opcode::Subtract), 2);
    }

    #[test]
    fn intervening_read_blocks_merge() {
        let (p, n) = optimize_text(
            "BH_IDENTITY a0 [0:4:1] 0\n\
             BH_IDENTITY b0 [0:4:1] 0\n\
             BH_ADD a0 a0 1\n\
             BH_ADD b0 b0 a0\n\
             BH_ADD a0 a0 1\n\
             BH_SYNC a0\nBH_SYNC b0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0);
        assert_eq!(p.count_op(Opcode::Add), 3);
    }

    #[test]
    fn mixed_ops_do_not_merge() {
        let (p, n) = optimize_text(
            "BH_IDENTITY a0 [0:4:1] 1\n\
             BH_ADD a0 a0 1\nBH_MULTIPLY a0 a0 2\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0);
        assert_eq!(p.instrs().len(), 4);
    }

    #[test]
    fn different_views_do_not_merge() {
        let (_, n) = optimize_text(
            "BH_IDENTITY a0 [0:8:1] 0\n\
             BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n\
             BH_ADD a0 [4:8:1] a0 [4:8:1] 1\n\
             BH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn long_chain_folds_completely() {
        let mut text = String::from("BH_IDENTITY a0 [0:4:1] 0\n");
        for _ in 0..8 {
            text.push_str("BH_ADD a0 a0 1\n");
        }
        text.push_str("BH_SYNC a0\n");
        let (p, n) = optimize_text(&text, &RewriteCtx::default());
        assert_eq!(n, 7);
        assert_eq!(p.count_op(Opcode::Add), 1);
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_ADD a0 a0 8"));
    }

    #[test]
    fn commutative_constant_on_either_side() {
        let (p, n) = optimize_text(
            "BH_IDENTITY a0 [0:4:1] 0\n\
             BH_ADD a0 1 a0\nBH_ADD a0 a0 2\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::Add), 1);
        assert!(p.to_text(PrintStyle::COMPACT).contains('3'));
    }

    #[test]
    fn bool_subtract_chain_folds_with_xor() {
        // Bool subtract is XOR: (x ⊻ t) ⊻ t is x, so the merged constant
        // must be t ⊻ t = false — folding with Add (OR on bool) gave ¬x.
        let (p, n) = optimize_text(
            ".base a0 bool[4]\n\
             BH_IDENTITY a0 true\n\
             BH_SUBTRACT a0 a0 true\nBH_SUBTRACT a0 a0 true\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert!(
            p.to_text(PrintStyle::COMPACT)
                .contains("BH_SUBTRACT a0 a0 false"),
            "{}",
            p.to_text(PrintStyle::COMPACT)
        );
    }

    #[test]
    fn uint8_wraps_during_fold() {
        let (p, _) = optimize_text(
            ".base a0 u8[4]\n\
             BH_IDENTITY a0 0\nBH_ADD a0 a0 200\nBH_ADD a0 a0 100\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_ADD a0 a0 44"));
    }
}
