//! The context-aware Eq. 2 rewrite: inverse-then-multiply becomes solve.
//!
//! ```text
//! BH_INVERSE t A          BH_NONE
//! BH_MATMUL  x t B   ⇒    BH_SOLVE x A B
//! ```
//!
//! "Instead one could do a LU-factorization of the same problem, which
//! would usually be faster to compute. Note that this is of course only
//! faster, if we do not use the A⁻¹ tensor for anything else in our
//! computations." (§2). That side condition is exactly what
//! [`DefUse::read_after`] checks.

use crate::rule::{is_full_view, LiveAtExit, RewriteCtx, RewriteRule};
use bh_ir::{DefUse, Instruction, Opcode, Program};

/// See the module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct InverseSolveRewrite;

impl RewriteRule for InverseSolveRewrite {
    fn name(&self) -> &'static str {
        "inverse-solve"
    }

    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize {
        // Dropping the BH_INVERSE destroys t's final value. Under the
        // all-registers-live policy t is host-observable, which is exactly
        // the paper's "use A⁻¹ for anything else" disqualifier — and
        // keeping the inverse alongside a solve would be slower than the
        // original, so the rewrite simply does not fire.
        if !matches!(ctx.live_at_exit, LiveAtExit::SyncedOnly) {
            return 0;
        }
        let mut applied = 0;
        loop {
            let du = DefUse::compute(program);
            let Some((inv_idx, mm_idx)) = find_pattern(program, &du) else {
                break;
            };
            let a = program.instrs()[inv_idx].inputs()[0].clone();
            let mm = &mut program.instrs_mut()[mm_idx];
            mm.op = Opcode::Solve;
            mm.operands[1] = a;
            program.instrs_mut()[inv_idx] = Instruction::noop();
            applied += 1;
        }
        applied
    }
}

fn find_pattern(program: &Program, du: &DefUse) -> Option<(usize, usize)> {
    let instrs = program.instrs();
    for (mm_idx, mm) in instrs.iter().enumerate() {
        if mm.op != Opcode::MatMul {
            continue;
        }
        // x = t @ B with t the *left* operand (A⁻¹B solves Ax = B; B·A⁻¹
        // would be the transposed system and is out of scope).
        let Some(t) = mm.inputs()[0].as_view() else {
            continue;
        };
        let Some(b) = mm.inputs()[1].as_view() else {
            continue;
        };
        if !is_full_view(program, t) {
            continue;
        }
        // Find the defining BH_INVERSE of t.
        let Some(&inv_idx) = du.defs(t.reg).iter().rfind(|&&d| d < mm_idx) else {
            continue;
        };
        let inv = &instrs[inv_idx];
        if inv.op != Opcode::Inverse {
            continue;
        }
        let Some(inv_out) = inv.out_view() else {
            continue;
        };
        if !is_full_view(program, inv_out) {
            continue;
        }
        let Some(a) = inv.inputs()[0].as_view() else {
            continue;
        };
        // Side condition 1: the inverse is used *only* by this matmul
        // (later BH_FREEs of t are fine — the value itself is not read).
        let extra_use = du
            .uses(t.reg)
            .iter()
            .any(|&u| u != mm_idx && !matches!(instrs[u].op, Opcode::Free));
        if extra_use {
            continue;
        }
        // Side condition 2: t is defined exactly once (no partial updates
        // blending other data into the "inverse").
        if du.defs(t.reg).len() != 1 {
            continue;
        }
        // Side condition 3: A and B unchanged between the two sites.
        if du.written_between(a.reg, inv_idx, mm_idx) || du.written_between(b.reg, inv_idx, mm_idx)
        {
            continue;
        }
        return Some((inv_idx, mm_idx));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, PrintStyle};

    fn run(text: &str) -> (Program, usize) {
        let mut p = parse_program(text).unwrap();
        let n = InverseSolveRewrite.apply(&mut p, &RewriteCtx::default());
        p.compact();
        (p, n)
    }

    const EQ2: &str = "\
.base a f64[8,8] input
.base b f64[8] input
.base t f64[8,8]
.base x f64[8]
BH_INVERSE t a
BH_MATMUL x t b
BH_SYNC x
";

    #[test]
    fn eq2_rewrites_to_solve() {
        let (p, n) = run(EQ2);
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::Inverse), 0);
        assert_eq!(p.count_op(Opcode::MatMul), 0);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_SOLVE x a b"), "{text}");
    }

    #[test]
    fn all_registers_live_keeps_the_inverse() {
        // Under observe-all, t's final value is host-observable: dropping
        // the BH_INVERSE would hand the host a zero-filled t.
        let mut p = parse_program(EQ2).unwrap();
        let ctx = RewriteCtx {
            live_at_exit: LiveAtExit::AllRegisters,
            ..RewriteCtx::default()
        };
        assert_eq!(InverseSolveRewrite.apply(&mut p, &ctx), 0);
        assert_eq!(p.count_op(Opcode::Inverse), 1);
        assert_eq!(p.count_op(Opcode::MatMul), 1);
    }

    #[test]
    fn inverse_with_another_use_is_kept() {
        // The paper's side condition: A⁻¹ is used for something else.
        let (p, n) = run(".base a f64[8,8] input
.base b f64[8] input
.base t f64[8,8]
.base x f64[8]
.base y f64[8,8]
BH_INVERSE t a
BH_MATMUL x t b
BH_ADD y t t
BH_SYNC x
BH_SYNC y
");
        assert_eq!(n, 0);
        assert_eq!(p.count_op(Opcode::Inverse), 1);
    }

    #[test]
    fn freeing_the_inverse_afterwards_is_fine() {
        let (p, n) = run(".base a f64[8,8] input
.base b f64[8] input
.base t f64[8,8]
.base x f64[8]
BH_INVERSE t a
BH_MATMUL x t b
BH_FREE t
BH_SYNC x
");
        assert_eq!(n, 1);
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_SOLVE"));
    }

    #[test]
    fn right_multiplication_is_out_of_scope() {
        // x = B @ A⁻¹ solves a transposed system; must not rewrite.
        let (_, n) = run(".base a f64[8,8] input
.base b f64[8,8] input
.base t f64[8,8]
.base x f64[8,8]
BH_INVERSE t a
BH_MATMUL x b t
BH_SYNC x
");
        assert_eq!(n, 0);
    }

    #[test]
    fn modified_coefficient_matrix_blocks_rewrite() {
        let (_, n) = run(".base a f64[8,8] input
.base b f64[8] input
.base t f64[8,8]
.base x f64[8]
BH_INVERSE t a
BH_ADD a a 1
BH_MATMUL x t b
BH_SYNC x
");
        assert_eq!(n, 0);
    }

    #[test]
    fn matrix_rhs_also_rewrites() {
        let (p, n) = run(".base a f64[8,8] input
.base b f64[8,3] input
.base t f64[8,8]
.base x f64[8,3]
BH_INVERSE t a
BH_MATMUL x t b
BH_SYNC x
");
        assert_eq!(n, 1);
        assert!(p.to_text(PrintStyle::COMPACT).contains("BH_SOLVE x a b"));
    }

    #[test]
    fn repeated_patterns_all_rewrite() {
        let (p, n) = run(".base a f64[4,4] input
.base b f64[4] input
.base c f64[4,4] input
.base d f64[4] input
.base t1 f64[4,4]
.base t2 f64[4,4]
.base x f64[4]
.base y f64[4]
BH_INVERSE t1 a
BH_MATMUL x t1 b
BH_INVERSE t2 c
BH_MATMUL y t2 d
BH_SYNC x
BH_SYNC y
");
        assert_eq!(n, 2);
        assert_eq!(p.count_op(Opcode::Solve), 2);
    }
}
