//! The rule library.
//!
//! Every transformation the paper describes (plus the standard clean-up
//! passes they enable) lives here as an independent [`RewriteRule`]:
//!
//! | Rule | Paper artefact |
//! |------|----------------|
//! | [`ConstantMerge`] | Listing 2 → Listing 3 constant merging |
//! | [`PowerExpansion`] | Eq. 1 / Listings 4–5 power expansion |
//! | [`MultiplyChainReroll`] | Eq. 1 "or vice versa" |
//! | [`InverseSolveRewrite`] | Eq. 2 context-aware solve |
//! | [`AlgebraicSimplify`] | identity/annihilator contractions (§2) |
//! | [`StrengthReduction`] | cheap-op substitutions (§2) |
//! | [`CopyPropagation`], [`CommonSubexpression`], [`DeadCodeElimination`], [`TrivialCopyElision`] | enabling clean-ups |
//!
//! [`RewriteRule`]: crate::rule::RewriteRule

mod const_merge;
mod copyprop;
mod cse;
mod dce;
mod identity;
mod linalg;
mod power;
mod strength;

pub use const_merge::ConstantMerge;
pub use copyprop::CopyPropagation;
pub use cse::CommonSubexpression;
pub use dce::DeadCodeElimination;
pub use identity::{AlgebraicSimplify, TrivialCopyElision};
pub use linalg::InverseSolveRewrite;
pub use power::{MultiplyChainReroll, PowerExpansion};
pub use strength::StrengthReduction;
