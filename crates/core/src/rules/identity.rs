//! Algebraic identity and annihilator simplification.
//!
//! `x + 0`, `x · 1`, `x¹`, `x ≫ 0`, `x ∨ false` … collapse to a plain copy
//! (`BH_IDENTITY`), and a self-copy collapses to nothing. `x · 0`,
//! `x ∧ false`, `x ∨ true` collapse to a constant fill. These are the
//! smallest of the paper's "loop-fusion-like contractions of byte-codes".

use crate::rule::{reassoc_allowed, views_equivalent, RewriteCtx, RewriteRule};
use bh_ir::{Instruction, Opcode, Operand, Program};

/// See the module documentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlgebraicSimplify;

impl RewriteRule for AlgebraicSimplify {
    fn name(&self) -> &'static str {
        "algebraic-simplify"
    }

    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        for idx in 0..program.instrs().len() {
            let instr = &program.instrs()[idx];
            if !instr.op.is_elementwise() || instr.op.arity() != 2 {
                continue;
            }
            let Some(out) = instr.out_view().cloned() else {
                continue;
            };
            let Some((const_pos, c)) = instr.sole_const_input() else {
                continue;
            };
            let other = instr.inputs()[1 - const_pos].clone();
            let dtype = program.base(out.reg).dtype;
            let c_typed = c.cast(dtype);
            let op = instr.op;

            // Identity element: x ⊕ e == x. Right-position only for
            // non-commutative ops.
            let identity_applies = op
                .identity_scalar(dtype)
                .is_some_and(|e| e == c_typed && (op.is_commutative() || const_pos == 1));
            // `x + 0.0` flips the sign of -0.0; gate float add/sub-zero
            // behind fast_math. `x · 1`, `x / 1`, `x ^ 1` are IEEE-exact.
            let identity_exact =
                !matches!(op, Opcode::Add | Opcode::Subtract) || reassoc_allowed(ctx, dtype);
            if identity_applies && identity_exact {
                program.instrs_mut()[idx] = if other
                    .as_view()
                    .is_some_and(|v| views_equivalent(program, v, &out))
                {
                    Instruction::noop()
                } else {
                    Instruction::unary(Opcode::Identity, out, other)
                };
                applied += 1;
                continue;
            }

            // Annihilator: x ⊕ z == z. Exact for integers/bools; floats
            // violate it on NaN/Inf (0 · NaN = NaN), so gate on fast_math.
            let annihilates = op
                .annihilator_scalar(dtype)
                .is_some_and(|z| z == c_typed && (op.is_commutative() || const_pos == 1));
            if annihilates && reassoc_allowed(ctx, dtype) {
                program.instrs_mut()[idx] =
                    Instruction::unary(Opcode::Identity, out, Operand::Const(c_typed));
                applied += 1;
            }
        }
        applied
    }
}

/// Fold `BH_IDENTITY x x` (same view) into nothing, and fold
/// constant-input unary float ops (`BH_SQRT y 4.0` → `BH_IDENTITY y 2.0`).
#[derive(Debug, Default, Clone, Copy)]
pub struct TrivialCopyElision;

impl RewriteRule for TrivialCopyElision {
    fn name(&self) -> &'static str {
        "trivial-copy-elision"
    }

    fn apply(&self, program: &mut Program, _ctx: &RewriteCtx) -> usize {
        let mut applied = 0;
        for idx in 0..program.instrs().len() {
            let instr = &program.instrs()[idx];
            if instr.op != Opcode::Identity {
                continue;
            }
            let Some(out) = instr.out_view() else {
                continue;
            };
            if let Some(input) = instr.inputs()[0].as_view() {
                if views_equivalent(program, input, out)
                    && program.base(input.reg).dtype == program.base(out.reg).dtype
                {
                    program.instrs_mut()[idx] = Instruction::noop();
                    applied += 1;
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, PrintStyle};

    fn apply(text: &str, ctx: &RewriteCtx) -> (Program, usize) {
        let mut p = parse_program(text).unwrap();
        let n = AlgebraicSimplify.apply(&mut p, ctx);
        p.compact();
        (p, n)
    }

    #[test]
    fn add_zero_same_view_vanishes() {
        let (p, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\nBH_ADD a0 a0 0\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::Add), 0);
        assert_eq!(p.instrs().len(), 2);
    }

    #[test]
    fn add_zero_cross_register_becomes_copy() {
        let (p, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\nBH_ADD b0 [0:4:1] a0 0\nBH_SYNC b0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::Add), 0);
        assert_eq!(p.count_op(Opcode::Identity), 2);
    }

    #[test]
    fn multiply_one_and_power_one() {
        let (p, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\n\
             BH_MULTIPLY a0 a0 1\n\
             BH_POWER a0 a0 1\n\
             BH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 2);
        assert_eq!(p.instrs().len(), 2);
    }

    #[test]
    fn strict_ieee_keeps_add_zero_on_floats() {
        let strict = RewriteCtx {
            fast_math: false,
            ..RewriteCtx::default()
        };
        let (_, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\nBH_ADD a0 a0 0\nBH_SYNC a0\n",
            &strict,
        );
        assert_eq!(n, 0);
        // multiply-by-one is IEEE-exact and still fires
        let (_, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\nBH_MULTIPLY a0 a0 1\nBH_SYNC a0\n",
            &strict,
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn annihilator_multiply_zero() {
        let (p, n) = apply(
            ".base a0 i32[4]\n\
             BH_IDENTITY a0 5\nBH_MULTIPLY a0 a0 0\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::Multiply), 0);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_IDENTITY a0 0"), "{text}");
    }

    #[test]
    fn subtract_zero_right_only() {
        // x - 0 simplifies; 0 - x does not.
        let (_, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\nBH_SUBTRACT a0 a0 0\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        let (_, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\nBH_SUBTRACT a0 0 a0\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn logical_lattice_identities() {
        let (p, n) = apply(
            ".base m bool[4]\n\
             BH_IDENTITY m true\n\
             BH_LOGICAL_AND m m true\n\
             BH_LOGICAL_OR m m true\n\
             BH_SYNC m\n",
            &RewriteCtx::default(),
        );
        // AND true is an identity (removed); OR true annihilates (fill).
        assert_eq!(n, 2);
        assert_eq!(p.count_op(Opcode::LogicalAnd), 0);
        assert_eq!(p.count_op(Opcode::LogicalOr), 0);
    }

    #[test]
    fn shift_by_zero() {
        let (p, n) = apply(
            ".base a0 u32[4]\n\
             BH_IDENTITY a0 5\nBH_LEFT_SHIFT a0 a0 0\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::LeftShift), 0);
    }

    #[test]
    fn nonidentity_constants_untouched() {
        let (_, n) = apply(
            "BH_IDENTITY a0 [0:4:1] 5\nBH_ADD a0 a0 2\nBH_SYNC a0\n",
            &RewriteCtx::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn trivial_copy_elision() {
        let mut p =
            parse_program("BH_IDENTITY a0 [0:4:1] 1\nBH_IDENTITY a0 a0\nBH_SYNC a0\n").unwrap();
        let n = TrivialCopyElision.apply(&mut p, &RewriteCtx::default());
        p.compact();
        assert_eq!(n, 1);
        assert_eq!(p.count_op(Opcode::Identity), 1);
    }
}
