//! # bh-opt — algebraic transformation of vector byte-code sequences
//!
//! The primary contribution of *Algebraic Transformation of Descriptive
//! Vector Byte-code Sequences* (Larsen, Middleware DS '16), reproduced as
//! a library: a rewrite engine that transforms Bohrium-style byte-code
//! sequences "into more performant ones" before execution, so "the
//! scientific programmer will not need to change her code to utilize
//! special performant constructs".
//!
//! The three transformations the paper presents, and where they live:
//!
//! * **Constant merging** (Listing 2 → 3): [`rules::ConstantMerge`].
//! * **Power expansion** (Eq. 1, Listings 4–5): [`rules::PowerExpansion`]
//!   with the addition-chain schedules of [`chains`], plus the inverse
//!   direction [`rules::MultiplyChainReroll`].
//! * **Context-aware solve** (Eq. 2): [`rules::InverseSolveRewrite`].
//!
//! A pass manager ([`Optimizer`]) schedules these (with supporting
//! simplification, propagation and dead-code passes) to fixpoint, and a
//! static cost model ([`cost`]) scores programs in the kernel-launch /
//! traffic / flops regime the paper targets.
//!
//! # Example
//!
//! ```
//! use bh_ir::{parse_program, Opcode};
//! use bh_opt::{optimize, Optimizer};
//!
//! // The paper's Listing 2.
//! let mut program = parse_program(
//!     "BH_IDENTITY a0 [0:10:1] 0\n\
//!      BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
//!      BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
//!      BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
//!      BH_SYNC a0 [0:10:1]\n",
//! )?;
//! let report = optimize(&mut program);
//! // Listing 3: one BH_ADD with the merged constant.
//! assert_eq!(program.count_op(Opcode::Add), 1);
//! assert!(report.model_speedup() > 1.0);
//! # Ok::<(), bh_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chains;
pub mod cost;
mod pipeline;
mod rule;
pub mod rules;

/// Compile-time scalar folding, re-exported from `bh-ir` (it moved there
/// so the static plan auditor can share the exact same arithmetic).
pub use bh_ir::fold;

pub use bh_ir::fold::const_eval;
pub use cost::{estimate, CostEstimate, CostParams};
pub use pipeline::{
    optimize, optimize_at, standard_rules, AuditMode, OptLevel, OptOptions, OptReport, Optimizer,
};
pub use rule::{
    is_full_view, reassoc_allowed, views_equivalent, LiveAtExit, RewriteCtx, RewriteRule,
};
