//! The pass manager: rule scheduling, fixpoint iteration and reporting.

use crate::cost::{estimate, CostEstimate, CostParams};
use crate::rule::{LiveAtExit, RewriteCtx, RewriteRule};
use crate::rules::{
    AlgebraicSimplify, CommonSubexpression, ConstantMerge, CopyPropagation, DeadCodeElimination,
    InverseSolveRewrite, MultiplyChainReroll, PowerExpansion, StrengthReduction,
    TrivialCopyElision,
};
use bh_ir::equiv::{check_equiv, EquivOptions};
use bh_ir::Program;
use std::fmt;

/// When the pass manager runs the static plan auditor
/// ([`bh_ir::equiv::check_equiv`]).
///
/// Marked `#[non_exhaustive]`: a per-sweep or sampling mode may be added;
/// match with a wildcard arm outside this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum AuditMode {
    /// No auditing (the default): rules are trusted.
    #[default]
    Off,
    /// Every rule application is audited against the program it rewrote.
    /// A rewrite the auditor cannot prove equivalent is rolled back and
    /// counted in [`OptReport::audit_rollbacks`]; the pipeline continues
    /// with the remaining rules — graceful degradation instead of a
    /// wrong plan.
    PerRule,
}

/// Optimization level, LLVM-style.
///
/// Marked `#[non_exhaustive]`: levels between O1 and O2 (or above O2) may
/// be added; match with a wildcard arm outside this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[non_exhaustive]
pub enum OptLevel {
    /// No transformations.
    O0,
    /// The paper's headline rewrites plus clean-up: constant merging,
    /// identity simplification, dead-code elimination.
    O1,
    /// Everything: O1 + power expansion/re-roll, strength reduction, copy
    /// propagation, CSE and the context-aware linalg rewrite. Bohrium's
    /// default behaviour per §4.
    #[default]
    O2,
}

/// Options for [`Optimizer`].
///
/// Derives `Eq`/`Hash` (all fields are integral) so options can key
/// caches directly — a field added here is automatically part of any
/// such key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OptOptions {
    /// Which rule set to run.
    pub level: OptLevel,
    /// Shared rewrite context (fast-math policy, expansion budget,
    /// observability).
    pub ctx: RewriteCtx,
    /// Fixpoint bound: maximum sweeps over the rule list.
    pub max_iterations: usize,
    /// Weights for the before/after cost report.
    pub cost_params: CostParams,
    /// Translation-validation policy (participates in cache keys like
    /// every other field).
    pub audit: AuditMode,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            level: OptLevel::O2,
            ctx: RewriteCtx::default(),
            max_iterations: 8,
            cost_params: CostParams::default(),
            audit: AuditMode::Off,
        }
    }
}

impl OptOptions {
    /// Options at a given level with everything else default.
    pub fn level(level: OptLevel) -> OptOptions {
        OptOptions {
            level,
            ..OptOptions::default()
        }
    }

    /// Strict IEEE float semantics (disables re-associating rewrites on
    /// float data).
    pub fn strict_math(mut self) -> OptOptions {
        self.ctx.fast_math = false;
        self
    }

    /// Treat every register as observable at exit.
    pub fn observe_all(mut self) -> OptOptions {
        self.ctx.live_at_exit = LiveAtExit::AllRegisters;
        self
    }

    /// Set the translation-validation policy.
    pub fn audit(mut self, mode: AuditMode) -> OptOptions {
        self.audit = mode;
        self
    }

    /// The [`EquivOptions`] matching this rewrite context: the audit must
    /// accept exactly the algebra the rules were allowed to assume.
    pub fn equiv_options(&self) -> EquivOptions {
        let opts = EquivOptions::default();
        let opts = if self.ctx.fast_math {
            opts
        } else {
            opts.strict_math()
        };
        match self.ctx.live_at_exit {
            LiveAtExit::SyncedOnly => opts,
            _ => opts.observe_all(),
        }
    }
}

/// The transformation engine: applies a rule schedule to fixpoint.
///
/// # Examples
///
/// Optimise the paper's Listing 2 into Listing 3:
///
/// ```
/// use bh_ir::{parse_program, Opcode, PrintStyle};
/// use bh_opt::Optimizer;
///
/// let mut program = parse_program(
///     "BH_IDENTITY a0 [0:10:1] 0\n\
///      BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
///      BH_SYNC a0\n")?;
/// let report = Optimizer::default().run(&mut program);
/// assert_eq!(program.count_op(Opcode::Add), 1);
/// assert!(report.total_applications() >= 2);
/// println!("{}", program.to_text(PrintStyle::COMPACT));
/// # Ok::<(), bh_ir::ParseError>(())
/// ```
#[derive(Debug)]
pub struct Optimizer {
    options: OptOptions,
    rules: Vec<Box<dyn RewriteRule>>,
}

impl Default for Optimizer {
    fn default() -> Optimizer {
        Optimizer::new(OptOptions::default())
    }
}

impl Optimizer {
    /// Build the standard rule schedule for the options' level.
    pub fn new(options: OptOptions) -> Optimizer {
        let rules = standard_rules(options.level);
        Optimizer { options, rules }
    }

    /// An optimizer with a custom rule schedule.
    pub fn with_rules(options: OptOptions, rules: Vec<Box<dyn RewriteRule>>) -> Optimizer {
        Optimizer { options, rules }
    }

    /// The configured options.
    pub fn options(&self) -> &OptOptions {
        &self.options
    }

    /// Names of the scheduled rules, in application order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Transform `program` in place and report what happened.
    pub fn run(&self, program: &mut Program) -> OptReport {
        let before = estimate(program, &self.options.cost_params);
        let mut by_rule: Vec<(String, usize)> = self
            .rules
            .iter()
            .map(|r| (r.name().to_owned(), 0))
            .collect();
        let audit = self.options.audit == AuditMode::PerRule;
        let equiv_opts = self.options.equiv_options();
        let mut audits = 0;
        let mut audit_rollbacks = 0;
        let mut iterations = 0;
        for _ in 0..self.options.max_iterations {
            let mut changed = false;
            for (k, rule) in self.rules.iter().enumerate() {
                let snapshot = if audit { Some(program.clone()) } else { None };
                let n = rule.apply(program, &self.options.ctx);
                if n == 0 {
                    continue;
                }
                program.compact();
                if let Some(snapshot) = snapshot {
                    audits += 1;
                    if check_equiv(&snapshot, program, &equiv_opts).is_err() {
                        // The rewrite could not be proved sound: undo it
                        // and keep going with the remaining rules.
                        *program = snapshot;
                        audit_rollbacks += 1;
                        continue;
                    }
                }
                by_rule[k].1 += n;
                changed = true;
            }
            iterations += 1;
            if !changed {
                break;
            }
        }
        program.compact();
        let after = estimate(program, &self.options.cost_params);
        OptReport {
            iterations,
            by_rule,
            before,
            after,
            audits,
            audit_rollbacks,
        }
    }
}

/// The standard rule schedule at each level.
pub fn standard_rules(level: OptLevel) -> Vec<Box<dyn RewriteRule>> {
    match level {
        OptLevel::O0 => Vec::new(),
        OptLevel::O1 => vec![
            Box::new(ConstantMerge) as Box<dyn RewriteRule>,
            Box::new(AlgebraicSimplify),
            Box::new(TrivialCopyElision),
            Box::new(DeadCodeElimination),
        ],
        OptLevel::O2 => vec![
            Box::new(MultiplyChainReroll) as Box<dyn RewriteRule>,
            Box::new(ConstantMerge),
            Box::new(AlgebraicSimplify),
            Box::new(StrengthReduction),
            Box::new(PowerExpansion),
            Box::new(CopyPropagation),
            Box::new(CommonSubexpression),
            Box::new(InverseSolveRewrite),
            Box::new(TrivialCopyElision),
            Box::new(DeadCodeElimination),
        ],
    }
}

/// What an [`Optimizer::run`] did.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Fixpoint sweeps performed.
    pub iterations: usize,
    /// Applications per rule, in schedule order.
    pub by_rule: Vec<(String, usize)>,
    /// Static cost before transformation.
    pub before: CostEstimate,
    /// Static cost after transformation.
    pub after: CostEstimate,
    /// Per-rule audits performed (0 unless [`AuditMode::PerRule`]).
    pub audits: usize,
    /// Rule applications undone because the auditor could not prove them
    /// equivalent.
    pub audit_rollbacks: usize,
}

impl OptReport {
    /// Total rewrites applied across all rules.
    pub fn total_applications(&self) -> usize {
        self.by_rule.iter().map(|(_, n)| n).sum()
    }

    /// Model-time speed-up factor (≥ 1 when the transformation helped).
    ///
    /// Both sides are guarded: an empty (or otherwise zero-cost) program
    /// before *or* after transformation reports a neutral 1.0 rather than
    /// 0/0 = NaN or a misleading 0×/∞×.
    pub fn model_speedup(&self) -> f64 {
        if self.before.time == 0 || self.after.time == 0 {
            return 1.0;
        }
        self.before.time as f64 / self.after.time as f64
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "optimised in {} iteration(s): {} → {} byte-codes, model speed-up {:.2}×",
            self.iterations,
            self.before.bytecodes,
            self.after.bytecodes,
            self.model_speedup()
        )?;
        for (name, n) in &self.by_rule {
            if *n > 0 {
                writeln!(f, "  {name}: {n}")?;
            }
        }
        if self.audits > 0 {
            writeln!(
                f,
                "  audited {} rewrite(s), rolled back {}",
                self.audits, self.audit_rollbacks
            )?;
        }
        Ok(())
    }
}

/// Convenience one-shot: optimise at O2 with defaults.
pub fn optimize(program: &mut Program) -> OptReport {
    Optimizer::default().run(program)
}

/// Convenience one-shot at a chosen level.
pub fn optimize_at(program: &mut Program, level: OptLevel) -> OptReport {
    Optimizer::new(OptOptions::level(level)).run(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, Opcode, PrintStyle};

    const LISTING2: &str = "\
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
";

    #[test]
    fn o0_is_a_no_op() {
        let mut p = parse_program(LISTING2).unwrap();
        let report = optimize_at(&mut p, OptLevel::O0);
        assert_eq!(report.total_applications(), 0);
        assert_eq!(p.instrs().len(), 5);
    }

    #[test]
    fn o1_produces_listing3() {
        let mut p = parse_program(LISTING2).unwrap();
        let report = optimize_at(&mut p, OptLevel::O1);
        assert_eq!(p.count_op(Opcode::Add), 1);
        assert_eq!(p.instrs().len(), 3);
        assert!(report.model_speedup() > 1.0);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_ADD a0 a0 3"), "{text}");
    }

    #[test]
    fn o2_pipeline_reaches_fixpoint() {
        let mut p = parse_program(LISTING2).unwrap();
        let report = optimize(&mut p);
        // One extra sweep confirms the fixpoint: running again changes
        // nothing.
        let report2 = optimize(&mut p);
        assert_eq!(report2.total_applications(), 0);
        assert!(report.iterations <= 8);
    }

    #[test]
    fn full_pipeline_on_combined_workload() {
        // Mixes all three paper transformations in one program.
        let mut p = parse_program(
            ".base m f64[8,8] input
.base rhs f64[8] input
.base t f64[8,8]
.base x f64[8]
.base v f64[64]
.base w f64[64]
BH_IDENTITY v 0
BH_ADD v v 1
BH_ADD v v 1
BH_ADD v v 1
BH_POWER w v 10
BH_INVERSE t m
BH_MATMUL x t rhs
BH_SYNC w
BH_SYNC x
",
        )
        .unwrap();
        let report = optimize(&mut p);
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_ADD v v 3"), "{text}");
        assert_eq!(p.count_op(Opcode::Power), 0, "{text}");
        assert_eq!(p.count_op(Opcode::Multiply), 4, "{text}");
        assert!(text.contains("BH_SOLVE x m rhs"), "{text}");
        assert!(report.model_speedup() > 1.0);
        assert!(report.total_applications() >= 4);
    }

    #[test]
    fn empty_program_reports_neutral_speedup() {
        let mut p = Program::new();
        let report = optimize(&mut p);
        assert_eq!(report.before.time, 0);
        assert_eq!(report.after.time, 0);
        assert_eq!(report.model_speedup(), 1.0);
        assert!(report.model_speedup().is_finite());
    }

    #[test]
    fn report_display_lists_fired_rules() {
        let mut p = parse_program(LISTING2).unwrap();
        let report = optimize(&mut p);
        let text = report.to_string();
        assert!(text.contains("constant-merge"), "{text}");
        assert!(text.contains("model speed-up"), "{text}");
    }

    #[test]
    fn optimizer_exposes_schedule() {
        let names = Optimizer::default().rule_names();
        assert!(names.contains(&"power-expansion"));
        assert!(names.contains(&"inverse-solve"));
        let o1 = Optimizer::new(OptOptions::level(OptLevel::O1)).rule_names();
        assert!(!o1.contains(&"power-expansion"));
    }

    #[test]
    fn strict_math_options() {
        let mut p = parse_program(LISTING2).unwrap();
        let report = Optimizer::new(OptOptions::default().strict_math()).run(&mut p);
        // f64 adds cannot merge under strict IEEE; DCE keeps synced value.
        assert_eq!(p.count_op(Opcode::Add), 3);
        let _ = report;
    }

    #[test]
    fn per_rule_audit_accepts_the_standard_pipeline() {
        let mut audited = parse_program(LISTING2).unwrap();
        let report =
            Optimizer::new(OptOptions::default().audit(AuditMode::PerRule)).run(&mut audited);
        assert!(report.audits > 0);
        assert_eq!(report.audit_rollbacks, 0);
        // The audited run lands on the same plan as the unaudited one.
        let mut plain = parse_program(LISTING2).unwrap();
        optimize(&mut plain);
        assert_eq!(audited, plain);
    }

    /// A rewrite that silently corrupts the program: it "merges" the
    /// constant-add chain by deleting one add without adjusting another.
    #[derive(Debug)]
    struct DropsAnAdd;

    impl RewriteRule for DropsAnAdd {
        fn name(&self) -> &'static str {
            "drops-an-add"
        }

        fn apply(&self, program: &mut Program, _ctx: &RewriteCtx) -> usize {
            let Some(idx) = program.instrs().iter().position(|i| i.op == Opcode::Add) else {
                return 0;
            };
            program.instrs_mut()[idx] = bh_ir::Instruction::noop();
            1
        }
    }

    #[test]
    fn per_rule_audit_rolls_back_an_unsound_rule() {
        let mut p = parse_program(LISTING2).unwrap();
        let unsound: Vec<Box<dyn RewriteRule>> = vec![Box::new(DropsAnAdd)];
        let report =
            Optimizer::with_rules(OptOptions::default().audit(AuditMode::PerRule), unsound)
                .run(&mut p);
        assert!(report.audit_rollbacks > 0);
        assert_eq!(report.total_applications(), 0);
        // Rollback restored the program: all three adds survive.
        assert_eq!(p.count_op(Opcode::Add), 3);
        // Without the audit the same rule destroys the plan.
        let mut p2 = parse_program(LISTING2).unwrap();
        let unsound: Vec<Box<dyn RewriteRule>> = vec![Box::new(DropsAnAdd)];
        Optimizer::with_rules(OptOptions::default(), unsound).run(&mut p2);
        assert!(p2.count_op(Opcode::Add) < 3);
    }

    #[test]
    fn audit_mode_partitions_option_equality() {
        // OptOptions keys caches; an audited configuration must never
        // collide with an unaudited one.
        assert_ne!(
            OptOptions::default(),
            OptOptions::default().audit(AuditMode::PerRule)
        );
    }

    #[test]
    fn observe_all_keeps_unsynced_results() {
        let mut p =
            parse_program("BH_IDENTITY a [0:4:1] 1\nBH_IDENTITY b [0:4:1] 2\nBH_SYNC a\n").unwrap();
        Optimizer::new(OptOptions::default().observe_all()).run(&mut p);
        assert_eq!(p.instrs().len(), 3);
    }
}
