//! Compile-time scalar evaluation for constant folding.
//!
//! The constant-merging rule of Listing 3 needs `1 + 1 + 1 = 3` evaluated
//! at transformation time, in the *target dtype's* arithmetic (wrapping
//! u8 addition must wrap here exactly as it would in the VM).

use bh_ir::Opcode;
use bh_tensor::{DType, Scalar};

/// Evaluate `a ⊕ b` in `dtype` arithmetic, for the foldable op-codes.
///
/// Returns `None` for op-codes the folder does not handle (the caller must
/// then leave the byte-code untouched).
pub fn const_eval(op: Opcode, a: Scalar, b: Scalar, dtype: DType) -> Option<Scalar> {
    if dtype.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        let v = match op {
            Opcode::Add => x + y,
            Opcode::Subtract => x - y,
            Opcode::Multiply => x * y,
            Opcode::Divide => x / y,
            Opcode::Maximum => x.max(y),
            Opcode::Minimum => x.min(y),
            Opcode::Power => x.powf(y),
            _ => return None,
        };
        return Some(Scalar::from_f64(v, dtype));
    }
    if dtype == DType::Bool {
        let (x, y) = (a.as_f64() != 0.0, b.as_f64() != 0.0);
        let v = match op {
            Opcode::Add | Opcode::LogicalOr | Opcode::BitwiseOr | Opcode::Maximum => x | y,
            Opcode::Multiply | Opcode::LogicalAnd | Opcode::BitwiseAnd | Opcode::Minimum => x & y,
            Opcode::Subtract | Opcode::LogicalXor | Opcode::BitwiseXor => x ^ y,
            _ => return None,
        };
        return Some(Scalar::Bool(v));
    }
    // Integer dtypes: compute in i64 then truncate into the dtype, exactly
    // like the VM's wrapping element ops.
    let (x, y) = (a.as_integral()?, b.as_integral()?);
    let bits = dtype.size_of() as u32 * 8;
    let v = match op {
        Opcode::Add => x.wrapping_add(y),
        Opcode::Subtract => x.wrapping_sub(y),
        Opcode::Multiply => x.wrapping_mul(y),
        Opcode::Divide => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        Opcode::Maximum => x.max(y),
        Opcode::Minimum => x.min(y),
        Opcode::BitwiseAnd => x & y,
        Opcode::BitwiseOr => x | y,
        Opcode::BitwiseXor => x ^ y,
        Opcode::LeftShift => x.wrapping_shl((y as u32) % bits),
        Opcode::RightShift => x.wrapping_shr((y as u32) % bits),
        _ => return None,
    };
    Some(Scalar::from_i64(v, dtype))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_the_paper_constants() {
        // 1 + 1 + 1 -> 3, the Listing 2 -> Listing 3 fold.
        let one = Scalar::F64(1.0);
        let two = const_eval(Opcode::Add, one, one, DType::Float64).unwrap();
        let three = const_eval(Opcode::Add, two, one, DType::Float64).unwrap();
        assert_eq!(three, Scalar::F64(3.0));
    }

    #[test]
    fn integer_folding_wraps_like_the_vm() {
        let a = Scalar::I64(200);
        let b = Scalar::I64(100);
        assert_eq!(
            const_eval(Opcode::Add, a, b, DType::UInt8).unwrap(),
            Scalar::U8(44) // (200 + 100) mod 256
        );
    }

    #[test]
    fn division_by_zero_folds_to_zero_for_ints() {
        assert_eq!(
            const_eval(Opcode::Divide, Scalar::I32(7), Scalar::I32(0), DType::Int32).unwrap(),
            Scalar::I32(0)
        );
    }

    #[test]
    fn bool_lattice() {
        let t = Scalar::Bool(true);
        let f = Scalar::Bool(false);
        assert_eq!(const_eval(Opcode::Add, t, f, DType::Bool).unwrap(), t);
        assert_eq!(const_eval(Opcode::Multiply, t, f, DType::Bool).unwrap(), f);
        assert_eq!(const_eval(Opcode::Subtract, t, t, DType::Bool).unwrap(), f);
    }

    #[test]
    fn float_min_max_power() {
        assert_eq!(
            const_eval(
                Opcode::Maximum,
                Scalar::F64(1.0),
                Scalar::F64(2.0),
                DType::Float64
            ),
            Some(Scalar::F64(2.0))
        );
        assert_eq!(
            const_eval(
                Opcode::Power,
                Scalar::F64(2.0),
                Scalar::F64(10.0),
                DType::Float64
            ),
            Some(Scalar::F64(1024.0))
        );
    }

    #[test]
    fn shifts_mask_to_width() {
        assert_eq!(
            const_eval(
                Opcode::LeftShift,
                Scalar::I64(1),
                Scalar::I64(9),
                DType::UInt8
            )
            .unwrap(),
            Scalar::U8(2)
        );
    }

    #[test]
    fn unhandled_ops_return_none() {
        assert_eq!(
            const_eval(
                Opcode::Arctan2,
                Scalar::I32(1),
                Scalar::I32(1),
                DType::Int32
            ),
            None
        );
        assert_eq!(
            const_eval(
                Opcode::Mod,
                Scalar::Bool(true),
                Scalar::Bool(true),
                DType::Bool
            ),
            None
        );
    }

    #[test]
    fn non_integral_into_int_dtype_returns_none() {
        assert_eq!(
            const_eval(Opcode::Add, Scalar::F64(0.5), Scalar::I64(1), DType::Int32),
            None
        );
    }
}
