//! The rewrite-rule abstraction.
//!
//! "A transformation can be thought of as a rewriting of elements from one
//! set to another" (§2). Each [`RewriteRule`] scans a program and replaces
//! byte-code sequences with cheaper equivalent ones, leaving `BH_NONE`
//! placeholders that the pass manager compacts away.

use bh_ir::{Program, ViewRef};
use bh_tensor::DType;

/// What counts as observable at program exit, for liveness-based rules.
///
/// Marked `#[non_exhaustive]`: finer observability contracts (e.g. an
/// explicit register set) may be added; match with a wildcard arm outside
/// this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum LiveAtExit {
    /// Only values a `BH_SYNC` reads are observable (Bohrium's contract:
    /// the bridge syncs before touching data). Dead-store elimination may
    /// remove unsynced results.
    #[default]
    SyncedOnly,
    /// Every register is observable at exit; dead-store elimination only
    /// removes values that are provably overwritten.
    AllRegisters,
}

/// Shared configuration handed to every rule application.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RewriteCtx {
    /// Permit rewrites that can change floating-point rounding
    /// (re-association, constant merging, power expansion on floats).
    /// Bohrium applies these by default — the paper's Listing 3 merges
    /// f64 constants — so this defaults to `true`; set `false` for strict
    /// IEEE semantics, which restricts those rules to integer data.
    pub fast_math: bool,
    /// Upper bound on the multiply count a `BH_POWER` expansion may emit;
    /// larger exponents keep the intrinsic.
    pub max_power_multiplies: usize,
    /// Observability assumption for dead-code elimination.
    pub live_at_exit: LiveAtExit,
}

impl Default for RewriteCtx {
    fn default() -> RewriteCtx {
        RewriteCtx {
            fast_math: true,
            max_power_multiplies: 16,
            live_at_exit: LiveAtExit::SyncedOnly,
        }
    }
}

/// One algebraic transformation over byte-code sequences.
pub trait RewriteRule {
    /// Stable, human-readable rule name (reported by the pass manager).
    fn name(&self) -> &'static str;

    /// Scan `program` once and apply every instance of the rewrite found,
    /// returning how many rewrites were performed. Implementations may
    /// leave `BH_NONE` placeholders; the pass manager compacts after each
    /// rule.
    fn apply(&self, program: &mut Program, ctx: &RewriteCtx) -> usize;
}

impl std::fmt::Debug for dyn RewriteRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RewriteRule({})", self.name())
    }
}

/// True when two view operands address exactly the same elements of the
/// same register (resolved geometrically, so `a0` and `a0[0:10:1]` over a
/// 10-element base agree).
pub fn views_equivalent(program: &Program, a: &ViewRef, b: &ViewRef) -> bool {
    if a.reg != b.reg {
        return false;
    }
    match (program.resolve_view(a), program.resolve_view(b)) {
        (Ok(ga), Ok(gb)) => ga == gb,
        _ => false,
    }
}

/// True when the view covers its whole base contiguously.
pub fn is_full_view(program: &Program, v: &ViewRef) -> bool {
    match program.resolve_view(v) {
        Ok(g) => {
            g.offset() == 0 && g.is_contiguous() && g.nelem() == program.base(v.reg).shape.nelem()
        }
        Err(_) => false,
    }
}

/// True when a float-rounding-sensitive rewrite may fire for `dtype` under
/// the context's `fast_math` policy (always true for non-float data).
pub fn reassoc_allowed(ctx: &RewriteCtx, dtype: DType) -> bool {
    ctx.fast_math || !dtype.is_float()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::{Shape, Slice};

    #[test]
    fn defaults_match_bohrium_behaviour() {
        let ctx = RewriteCtx::default();
        assert!(ctx.fast_math);
        assert_eq!(ctx.live_at_exit, LiveAtExit::SyncedOnly);
        assert!(ctx.max_power_multiplies >= 4); // enough for x^10
    }

    #[test]
    fn view_equivalence_resolves_geometry() {
        let mut p = Program::new();
        let r = p.declare("a0", DType::Float64, Shape::vector(10));
        let implicit = ViewRef::full(r);
        let explicit = ViewRef::sliced(r, vec![Slice::new(Some(0), Some(10), 1)]);
        let half = ViewRef::sliced(r, vec![Slice::range(0, 5)]);
        assert!(views_equivalent(&p, &implicit, &explicit));
        assert!(!views_equivalent(&p, &implicit, &half));
        let other = p.declare("a1", DType::Float64, Shape::vector(10));
        assert!(!views_equivalent(&p, &implicit, &ViewRef::full(other)));
    }

    #[test]
    fn full_view_detection() {
        let mut p = Program::new();
        let r = p.declare("a0", DType::Float64, Shape::vector(10));
        assert!(is_full_view(&p, &ViewRef::full(r)));
        assert!(is_full_view(
            &p,
            &ViewRef::sliced(r, vec![Slice::new(Some(0), Some(10), 1)])
        ));
        assert!(!is_full_view(
            &p,
            &ViewRef::sliced(r, vec![Slice::range(1, 10)])
        ));
        assert!(!is_full_view(
            &p,
            &ViewRef::sliced(r, vec![Slice::new(None, None, 2)])
        ));
    }

    #[test]
    fn reassoc_gating() {
        let strict = RewriteCtx {
            fast_math: false,
            ..RewriteCtx::default()
        };
        assert!(reassoc_allowed(&strict, DType::Int32));
        assert!(!reassoc_allowed(&strict, DType::Float64));
        assert!(reassoc_allowed(&RewriteCtx::default(), DType::Float64));
    }
}
