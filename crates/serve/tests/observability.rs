//! Serve-layer observability tests: queue-wait lands in the runtime's
//! per-digest profile, the trace sink sees tenant-tagged queue/batch
//! spans, and `Server::metrics` exports all three layers (scheduler,
//! runtime, profile) through one `MetricSet`.
//!
//! Like the scheduler tests, everything runs with `.workers(0)` and
//! `service_once`, so span ordering and profile counts are deterministic.

use bh_ir::parse_program;
use bh_observe::{RingTraceSink, Stage, TracePhase};
use bh_runtime::Runtime;
use bh_serve::{ProgramHandle, Request, Server};
use std::sync::Arc;

/// `k` constant-adds over an `n`-vector.
fn chain(n: usize, k: usize) -> ProgramHandle {
    let mut text = format!("BH_IDENTITY a [0:{n}:1] 0\n");
    for _ in 0..k {
        text.push_str("BH_ADD a a 1\n");
    }
    text.push_str("BH_SYNC a\n");
    ProgramHandle::new(parse_program(&text).unwrap())
}

#[test]
fn queue_wait_is_charged_to_the_digest_profile() {
    let runtime = Runtime::builder().build_shared();
    let server = Server::builder(Arc::clone(&runtime)).workers(0).build();
    let h = chain(16, 2);
    let reg = h.program().reg_by_name("a").unwrap();

    let tickets: Vec<_> = (0..3)
        .map(|_| {
            server
                .submit(Request::with_handle("t", &h).read(reg))
                .unwrap()
        })
        .collect();
    while server.service_once() {}
    for t in tickets {
        t.wait().unwrap();
    }

    let top = runtime.profile(1);
    assert_eq!(top.len(), 1);
    let profile = &top[0];
    assert_eq!(profile.hits, 3);
    // Every request in the batch charged its wait to the digest — the
    // first-ever batch included (queue wait is recorded after `prepare`,
    // when the profile entry is guaranteed to exist).
    assert_eq!(profile.stages.get(Stage::QueueWait).count(), 3);
    assert_eq!(profile.stages.get(Stage::Execute).count(), 3);
}

#[test]
fn trace_sink_sees_tenant_tagged_queue_and_batch_spans() {
    let sink = RingTraceSink::shared(64);
    let runtime = Runtime::builder().build_shared();
    let server = Server::builder(Arc::clone(&runtime))
        .workers(0)
        .trace_sink(sink.clone())
        .build();
    let h = chain(8, 1);
    let reg = h.program().reg_by_name("a").unwrap();

    let ta = server
        .submit(Request::with_handle("acme", &h).read(reg))
        .unwrap();
    let tb = server
        .submit(Request::with_handle("beta", &h).read(reg))
        .unwrap();
    while server.service_once() {}
    ta.wait().unwrap();
    tb.wait().unwrap();

    let events = sink.events();
    let spans = |stage: &str, phase: TracePhase| {
        events
            .iter()
            .filter(|e| e.stage == stage && e.phase == phase)
            .count()
    };
    // One queue span per request, opened at enqueue and closed when the
    // batch pulled it; one batch span for the single micro-batch.
    assert_eq!(spans("queue", TracePhase::Begin), 2);
    assert_eq!(spans("queue", TracePhase::End), 2);
    assert_eq!(spans("batch", TracePhase::Begin), 1);
    assert_eq!(spans("batch", TracePhase::End), 1);
    // Queue events carry the submitting tenant.
    let tenants: Vec<_> = events
        .iter()
        .filter(|e| e.stage == "queue" && e.phase == TracePhase::Begin)
        .map(|e| e.tenant.as_deref().unwrap().to_owned())
        .collect();
    assert_eq!(tenants, vec!["acme", "beta"]);
    // Queue spans and the batch span reference the same digest
    // fingerprint (both requests share one program).
    let fps: Vec<u64> = events.iter().map(|e| e.fingerprint).collect();
    assert!(fps.windows(2).all(|w| w[0] == w[1]), "{fps:?}");
    let dump = sink.dump();
    assert!(dump.contains("tenant=acme"), "{dump}");
    assert!(dump.contains("B queue"), "{dump}");
}

#[test]
fn server_metrics_exports_scheduler_runtime_and_profile_layers() {
    let runtime = Runtime::builder().build_shared();
    let server = Server::builder(Arc::clone(&runtime)).workers(0).build();
    let h = chain(8, 3);
    let reg = h.program().reg_by_name("a").unwrap();
    let tickets: Vec<_> = (0..4)
        .map(|_| {
            server
                .submit(Request::with_handle("t", &h).read(reg))
                .unwrap()
        })
        .collect();
    while server.service_once() {}
    for t in tickets {
        t.wait().unwrap();
    }

    let text = server.metrics().to_prometheus();
    for family in [
        "bh_serve_completed_total 4",
        "bh_runtime_evals_total 4",
        "bh_vm_instructions_total",
        "bh_profile_digest_hits_total",
        "bh_profile_stage_nanos_total",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    let json = server.metrics().to_json();
    assert!(json.contains("\"bh_serve_completed_total\""), "{json}");
    assert!(json.contains("\"bh_profile_digest_hits_total\""), "{json}");
}

#[test]
fn profiling_disabled_runtime_still_serves_and_exports() {
    let runtime = Runtime::builder().profiling(false).build_shared();
    let server = Server::builder(Arc::clone(&runtime)).workers(0).build();
    let h = chain(8, 1);
    let reg = h.program().reg_by_name("a").unwrap();
    let t = server
        .submit(Request::with_handle("t", &h).read(reg))
        .unwrap();
    while server.service_once() {}
    t.wait().unwrap();

    assert!(runtime.profile(8).is_empty());
    let text = server.metrics().to_prometheus();
    assert!(text.contains("bh_serve_completed_total 1"), "{text}");
    assert!(!text.contains("bh_profile_digest_hits_total"), "{text}");
}

#[test]
fn tier_decisions_flow_through_server_metrics() {
    // A tiered runtime behind the server: the digest promotes mid-stream
    // and the tier counters plus the per-digest tier gauge surface in the
    // same `Server::metrics` snapshot dashboards already scrape.
    let runtime = Runtime::builder()
        .tiered(true)
        .promote_after(2)
        .build_shared();
    let server = Server::builder(Arc::clone(&runtime)).workers(0).build();
    let h = chain(16, 3);
    let reg = h.program().reg_by_name("a").unwrap();

    for _ in 0..4 {
        let t = server
            .submit(Request::with_handle("t", &h).read(reg))
            .unwrap();
        while server.service_once() {}
        t.wait().unwrap();
    }
    assert_eq!(runtime.stats().tiers.promotions, 1);

    let text = server.metrics().to_prometheus();
    for family in [
        "bh_runtime_tier0_builds_total 1",
        "bh_runtime_promotions_total 1",
        "bh_runtime_failed_promotions_total 0",
        "bh_runtime_rebaselines_total 0",
        "tier=\"tier2\"} 2",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    let json = server.metrics().to_json();
    assert!(json.contains("\"bh_runtime_promotions_total\""), "{json}");
    assert!(json.contains("\"bh_profile_digest_tier\""), "{json}");
}
