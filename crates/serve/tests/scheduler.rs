//! Scheduler-semantics tests: backpressure, weighted fairness, batching,
//! adaptive batch sizing, deadlines, the non-blocking ticket surface,
//! drain-on-shutdown, and exactly-once resolution under concurrent load.
//!
//! Deterministic tests build the server with `.workers(0)` and step it
//! with `service_once`, so batch formation, round-robin order and
//! batch-limit decisions are observable without sleeps or races.

use bh_ir::parse_program;
use bh_runtime::Runtime;
use bh_serve::{ProgramHandle, Request, ServeError, Server, Ticket};
use bh_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `k` constant-adds over an `n`-vector: distinct (n, k) → distinct digest.
fn chain(n: usize, k: usize) -> ProgramHandle {
    let mut text = format!("BH_IDENTITY a [0:{n}:1] 0\n");
    for _ in 0..k {
        text.push_str("BH_ADD a a 1\n");
    }
    text.push_str("BH_SYNC a\n");
    ProgramHandle::new(parse_program(&text).unwrap())
}

/// `y = x * x` over an 8-vector bound input.
fn square() -> ProgramHandle {
    ProgramHandle::new(
        parse_program(".base x f64[8] input\n.base y f64[8]\nBH_MULTIPLY y x x\nBH_SYNC y\n")
            .unwrap(),
    )
}

#[test]
fn backpressure_rejects_at_capacity_and_hands_the_request_back() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .queue_capacity(4)
        .build();
    let h = chain(8, 2);
    let reg = h.program().reg_by_name("a").unwrap();

    let tickets: Vec<_> = (0..4)
        .map(|_| {
            server
                .submit(Request::with_handle("t", &h).read(reg))
                .unwrap()
        })
        .collect();
    let overflow = server.submit(Request::with_handle("t", &h).read(reg));
    let rejected = overflow.unwrap_err();
    assert!(matches!(
        rejected.reason,
        ServeError::QueueFull { capacity: 4 }
    ));
    // The request comes back intact for a retry.
    assert_eq!(rejected.request.tenant(), "t");
    assert_eq!(server.queue_depth(), 4);

    // Draining frees capacity again.
    while server.service_once() {}
    for t in tickets {
        assert_eq!(t.wait().unwrap().value.unwrap().to_f64_vec(), vec![2.0; 8]);
    }
    assert!(server
        .submit(Request::with_handle("t", &h).read(reg))
        .is_ok());

    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.peak_queue_depth, 4);
}

#[test]
fn round_robin_keeps_a_flooding_tenant_from_starving_others() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .max_batch(1) // isolate pure round-robin order
        .build();
    let flood_program = chain(8, 1);
    let quiet_program = chain(8, 2);
    let flood: Vec<_> = (0..10)
        .map(|_| {
            server
                .submit(Request::with_handle("flood", &flood_program))
                .unwrap()
        })
        .collect();
    let quiet: Vec<_> = (0..2)
        .map(|_| {
            server
                .submit(Request::with_handle("quiet", &quiet_program))
                .unwrap()
        })
        .collect();

    // Leaders alternate flood, quiet, flood, quiet, …: after four steps
    // the quiet tenant is fully served even though it queued last behind
    // ten flooding requests.
    for _ in 0..4 {
        assert!(server.service_once());
    }
    assert!(quiet.iter().all(|t| t.is_done()));
    assert_eq!(flood.iter().filter(|t| t.is_done()).count(), 2);
    while server.service_once() {}
    assert!(flood.into_iter().all(|t| t.wait().is_ok()));
}

#[test]
fn weighted_tenants_split_service_by_their_weight_ratio() {
    // Two flooding tenants with weights 2:1 and distinct digests (so the
    // gather never crosses lanes). Smooth weighted round-robin must hand
    // "gold" two of every three leader picks.
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .max_batch(1)
        .tenant_weight("gold", 2)
        .tenant_weight("silver", 1)
        .build();
    let gold_program = chain(8, 1);
    let silver_program = chain(8, 2);
    let gold: Vec<_> = (0..30)
        .map(|_| {
            server
                .submit(Request::with_handle("gold", &gold_program))
                .unwrap()
        })
        .collect();
    let silver: Vec<_> = (0..30)
        .map(|_| {
            server
                .submit(Request::with_handle("silver", &silver_program))
                .unwrap()
        })
        .collect();

    for _ in 0..12 {
        assert!(server.service_once());
    }
    let quotas = server.stats().tenants;
    assert_eq!(quotas.served("gold"), 8, "2 of each 3 picks");
    assert_eq!(quotas.served("silver"), 4, "1 of each 3 picks");
    assert!((quotas.share("gold") - 2.0 / 3.0).abs() < 1e-12);

    // The lighter tenant is never starved: it advances every cycle.
    assert_eq!(silver.iter().filter(|t| t.is_done()).count(), 4);
    while server.service_once() {}
    assert!(gold.into_iter().all(|t| t.wait().is_ok()));
    assert!(silver.into_iter().all(|t| t.wait().is_ok()));
    let quotas = server.stats().tenants;
    assert_eq!(quotas.served("gold"), 30);
    assert_eq!(quotas.served("silver"), 30);
}

#[test]
fn unweighted_tenants_fall_back_to_the_default_weight() {
    // A default weight of 2 with one explicit weight-1 tenant inverts
    // the usual shape: the *configured* tenant is the deprioritised one.
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .max_batch(1)
        .default_tenant_weight(2)
        .tenant_weight("throttled", 1)
        .build();
    let a = chain(8, 1);
    let b = chain(8, 2);
    for _ in 0..12 {
        server.submit(Request::with_handle("normal", &a)).unwrap();
        server
            .submit(Request::with_handle("throttled", &b))
            .unwrap();
    }
    for _ in 0..9 {
        assert!(server.service_once());
    }
    let quotas = server.stats().tenants;
    assert_eq!(quotas.served("normal"), 6);
    assert_eq!(quotas.served("throttled"), 3);
    while server.service_once() {}
}

#[test]
fn adaptive_batcher_grows_under_light_load_and_converges_down_under_a_slow_engine() {
    // The injected slow engine: a stats sink that stalls every
    // evaluation once `delay_us` is raised. Latency SLO is 2ms — trivial
    // 8-element programs hold it easily, 10ms-stalled ones cannot.
    let delay_us = Arc::new(AtomicU64::new(0));
    let sink_delay = Arc::clone(&delay_us);
    let rt = Runtime::builder()
        .stats_sink(move |_| {
            let us = sink_delay.load(Ordering::Relaxed);
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
        })
        .build_shared();
    let server = Server::builder(rt)
        .workers(0)
        .min_batch(1)
        .max_batch(16)
        .adaptive_batch(Duration::from_millis(2))
        .build();
    let h = chain(8, 3);

    // Phase 1 — fast engine, backlogged tenant: the limit slow-starts
    // from min_batch toward the ceiling. Submit-then-drain in small
    // chunks keeps turnaround ≈ service time.
    for _ in 0..8 {
        for outcome in server.submit_many((0..16).map(|_| Request::with_handle("t", &h))) {
            outcome.unwrap();
        }
        while server.service_once() {}
    }
    let stats = server.stats();
    assert!(
        stats.batch_limits.last_limit() == Some(16),
        "limit should reach the ceiling under a held SLO: {stats}"
    );
    assert!(stats.batch_limits.grows() >= 4, "{stats}");
    assert_eq!(stats.batch_sizes.max_seen(), 16);

    // Phase 2 — slow engine: every window's p95 slips the SLO, so the
    // limit halves per window down to the floor.
    delay_us.store(10_000, Ordering::Relaxed);
    for _ in 0..8 {
        for outcome in server.submit_many((0..16).map(|_| Request::with_handle("t", &h))) {
            outcome.unwrap();
        }
        while server.service_once() {}
    }
    let stats = server.stats();
    assert_eq!(
        stats.batch_limits.last_limit(),
        Some(1),
        "limit should converge to the floor under a slipped SLO: {stats}"
    );
    assert!(stats.batch_limits.shrinks() >= 4, "{stats}");
    assert_eq!(stats.completed, 256);
}

#[test]
fn try_wait_returns_none_before_completion_and_the_value_after() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .build();
    let h = chain(8, 2);
    let reg = h.program().reg_by_name("a").unwrap();
    let mut ticket = server
        .submit(Request::with_handle("t", &h).read(reg))
        .unwrap();

    assert!(ticket.try_wait().is_none());
    assert!(ticket.try_wait().is_none(), "polling is repeatable");
    // A bounded wait with nothing servicing times out, ticket intact.
    assert!(ticket.wait_timeout(Duration::from_millis(5)).is_none());

    assert!(server.service_once());
    let response = ticket.try_wait().expect("serviced").unwrap();
    assert_eq!(response.value.unwrap().to_f64_vec(), vec![2.0; 8]);

    // wait_timeout also redeems an already-resolved ticket immediately.
    let mut second = server.submit(Request::with_handle("t", &h)).unwrap();
    assert!(server.service_once());
    assert!(second
        .wait_timeout(Duration::from_secs(60))
        .expect("already resolved")
        .is_ok());
}

#[test]
fn on_done_callbacks_fire_on_resolution_or_immediately() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .build();
    let h = chain(8, 1);
    let reg = h.program().reg_by_name("a").unwrap();
    let (tx, rx) = std::sync::mpsc::channel();

    // Registered before resolution: fires from the servicing thread,
    // with the ticket itself long dropped (fire-and-forget).
    let tx1 = tx.clone();
    server
        .submit(Request::with_handle("t", &h).read(reg))
        .unwrap()
        .on_done(move |result| tx1.send(("pending", result)).unwrap());
    assert!(rx.try_recv().is_err(), "nothing serviced yet");
    assert!(server.service_once());
    let (tag, result) = rx.try_recv().expect("callback fired during service");
    assert_eq!(tag, "pending");
    assert_eq!(
        result.unwrap().value.unwrap().to_f64_vec(),
        vec![1.0; 8],
        "callback receives the full response"
    );

    // Registered after resolution: fires immediately on this thread.
    let ticket = server.submit(Request::with_handle("t", &h)).unwrap();
    assert!(server.service_once());
    let tx2 = tx.clone();
    ticket.on_done(move |result| tx2.send(("resolved", result)).unwrap());
    assert_eq!(rx.try_recv().expect("immediate").0, "resolved");

    // Deadline expiry reaches callbacks too — every accepted request
    // resolves exactly once, through whichever surface observes it.
    server
        .submit(Request::with_handle("t", &h).deadline(Duration::ZERO))
        .unwrap()
        .on_done(move |result| tx.send(("expired", result)).unwrap());
    std::thread::sleep(Duration::from_millis(2));
    assert!(server.service_once());
    let (tag, result) = rx.try_recv().expect("expiry delivered");
    assert_eq!(tag, "expired");
    assert!(matches!(result, Err(ServeError::DeadlineExceeded { .. })));
}

#[test]
fn submit_many_accepts_and_bounces_per_request() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .queue_capacity(4)
        .build();
    let h = chain(8, 1);
    let outcomes =
        server.submit_many((0..6).map(|i| Request::with_handle(format!("t{}", i % 2), &h)));
    assert_eq!(outcomes.len(), 6);
    let (accepted, bounced): (Vec<_>, Vec<_>) = outcomes.into_iter().partition(Result::is_ok);
    assert_eq!(accepted.len(), 4);
    assert_eq!(bounced.len(), 2);
    for rejected in bounced {
        let rejected = rejected.unwrap_err();
        assert!(matches!(
            rejected.reason,
            ServeError::QueueFull { capacity: 4 }
        ));
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.rejected, 2);

    while server.service_once() {}
    for ticket in accepted {
        assert!(ticket.unwrap().wait().is_ok());
    }

    server.shutdown();
    let after = server.submit_many((0..2).map(|_| Request::with_handle("t", &h)));
    assert!(after
        .into_iter()
        .all(|o| matches!(o.unwrap_err().reason, ServeError::Shutdown)));
}

#[test]
fn rejected_chains_its_source_and_converts_into_serve_error() {
    use std::error::Error as _;

    // A fallible submit path can `?` straight to ServeError.
    fn forward(server: &Server, request: Request) -> Result<Ticket, ServeError> {
        Ok(server.submit(request)?)
    }

    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .queue_capacity(1)
        .build();
    let h = chain(8, 1);
    forward(&server, Request::with_handle("t", &h)).unwrap();
    let rejected = server.submit(Request::with_handle("t", &h)).unwrap_err();
    assert!(rejected.to_string().contains("queue full"));
    let source = rejected.source().expect("reason is chained");
    assert!(source.to_string().contains("capacity 1"));
    assert!(matches!(
        forward(&server, Request::with_handle("t", &h)),
        Err(ServeError::QueueFull { capacity: 1 })
    ));
    while server.service_once() {}
}

#[test]
fn same_digest_requests_batch_across_tenants_under_one_plan() {
    let rt = Runtime::builder().build_shared();
    let server = Server::builder(Arc::clone(&rt))
        .workers(0)
        .max_batch(16)
        .build();
    let h = square();
    let x = h.program().reg_by_name("x").unwrap();
    let y = h.program().reg_by_name("y").unwrap();
    let other = chain(16, 3);

    // Six same-program requests spread over three tenants, with one
    // unrelated program wedged in the middle of tenant-1's queue.
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let input = Tensor::from_vec(vec![i as f64; 8]);
            server
                .submit(
                    Request::with_handle(format!("tenant-{}", i % 3), &h)
                        .bind(x, input)
                        .read(y),
                )
                .unwrap()
        })
        .collect();
    let odd = server
        .submit(Request::with_handle("tenant-1", &other))
        .unwrap();

    // First service call takes all six matching requests as one batch —
    // gathered across every tenant queue — and leaves the odd one.
    assert!(server.service_once());
    assert_eq!(server.queue_depth(), 1);
    for (i, t) in tickets.into_iter().enumerate() {
        let r = t.wait().unwrap();
        assert_eq!(r.batch_size, 6);
        // Rebinding on the pinned VM kept every request's own input.
        let expected = (i as f64) * (i as f64);
        assert_eq!(r.value.unwrap().to_f64_vec(), vec![expected; 8]);
        assert!(r.turnaround >= r.queue_wait);
    }
    assert!(server.service_once());
    assert!(odd.wait().is_ok());
    assert!(!server.service_once());

    // One optimiser run served the whole six-request batch.
    assert_eq!(rt.stats().evals, 7);
    assert_eq!(rt.stats().cache_misses, 2); // square() once, chain() once
    let stats = server.stats();
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.batch_sizes.max_seen(), 6);
}

#[test]
fn expired_deadlines_fail_fast_without_executing() {
    let rt = Runtime::builder().build_shared();
    let server = Server::builder(Arc::clone(&rt)).workers(0).build();
    let h = chain(8, 1);
    let expired = server
        .submit(Request::with_handle("t", &h).deadline(Duration::ZERO))
        .unwrap();
    let alive = server.submit(Request::with_handle("t", &h)).unwrap();
    std::thread::sleep(Duration::from_millis(2));
    while server.service_once() {}

    match expired.wait() {
        Err(ServeError::DeadlineExceeded { missed_by }) => {
            assert!(missed_by >= Duration::from_millis(1));
        }
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    assert!(alive.wait().is_ok());
    // The expired request never reached the runtime.
    assert_eq!(rt.stats().evals, 1);
    let stats = server.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn default_deadline_applies_when_requests_carry_none() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .default_deadline(Duration::from_nanos(1))
        .build();
    let h = chain(8, 1);
    let t = server.submit(Request::with_handle("t", &h)).unwrap();
    std::thread::sleep(Duration::from_millis(1));
    server.service_once();
    assert!(matches!(t.wait(), Err(ServeError::DeadlineExceeded { .. })));
}

#[test]
fn invalid_programs_never_reach_a_batch() {
    // Reads a never-written register. Before the admission verifier this
    // was enqueued and failed every request of its batch at plan build;
    // now it bounces at submit time and never occupies queue space.
    let rt = Runtime::builder()
        .opt_level(bh_opt::OptLevel::O0)
        .build_shared();
    let server = Server::builder(rt).workers(0).build();
    let bad = ProgramHandle::new(parse_program("BH_ADD a [0:4:1] a [0:4:1] 1\n").unwrap());
    for _ in 0..2 {
        let rejected = server.submit(Request::with_handle("t", &bad)).unwrap_err();
        assert!(matches!(rejected.reason, ServeError::Malformed(_)));
    }
    assert!(!server.service_once());
    assert_eq!(server.stats().rejected, 2);
    assert_eq!(server.stats().failed, 0);
}

#[test]
fn tenant_state_is_dropped_when_a_tenant_drains() {
    // Ephemeral tenant IDs must not accumulate scheduler state: after
    // draining, the server tracks zero tenants however many distinct IDs
    // it has ever seen.
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .build();
    let h = chain(8, 1);
    for wave in 0..3 {
        let tickets: Vec<_> = (0..20)
            .map(|i| {
                server
                    .submit(Request::with_handle(format!("user-{wave}-{i}"), &h))
                    .unwrap()
            })
            .collect();
        assert_eq!(server.active_tenants(), 20);
        while server.service_once() {}
        assert!(tickets.into_iter().all(|t| t.wait().is_ok()));
        assert_eq!(server.active_tenants(), 0);
        assert_eq!(server.queue_depth(), 0);
    }
    assert_eq!(server.stats().completed, 60);
}

#[test]
fn batched_request_omitting_a_binding_sees_zeros_not_another_tenants_data() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .max_batch(4)
        .build();
    let h = ProgramHandle::new(
        parse_program(".base x f64[4] input\n.base y f64[4]\nBH_ADD y x 1\nBH_SYNC y\n").unwrap(),
    );
    let x = h.program().reg_by_name("x").unwrap();
    let y = h.program().reg_by_name("y").unwrap();
    // Tenant A binds a "secret" input; tenant B legally omits the
    // binding (unbound inputs are zero-filled). Batched on one pinned
    // VM, B must still see zeros — not A's data.
    let a = server
        .submit(
            Request::with_handle("a", &h)
                .bind(x, Tensor::from_vec(vec![42.0f64; 4]))
                .read(y),
        )
        .unwrap();
    let b = server
        .submit(Request::with_handle("b", &h).read(y))
        .unwrap();
    assert!(server.service_once());
    assert_eq!(a.wait().unwrap().value.unwrap().to_f64_vec(), vec![43.0; 4]);
    assert_eq!(b.wait().unwrap().value.unwrap().to_f64_vec(), vec![1.0; 4]);
}

#[test]
fn batched_partial_write_programs_match_fresh_vm_semantics() {
    // `y[0:2] = 5; y += 1; sync y` validates but is not rerun-safe: the
    // tail of y is read without being written, so naive buffer reuse
    // would leak the first run's values into the second. Both identical
    // requests in one batch must produce the fresh-VM answer.
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .max_batch(4)
        .build();
    let h = ProgramHandle::new(
        parse_program(".base y f64[4]\nBH_IDENTITY y [0:2:1] 5\nBH_ADD y y 1\nBH_SYNC y\n")
            .unwrap(),
    );
    assert!(!bh_ir::rerun_safe(h.program()));
    let y = h.program().reg_by_name("y").unwrap();
    let t1 = server
        .submit(Request::with_handle("t", &h).read(y))
        .unwrap();
    let t2 = server
        .submit(Request::with_handle("t", &h).read(y))
        .unwrap();
    assert!(server.service_once());
    let r1 = t1.wait().unwrap();
    let r2 = t2.wait().unwrap();
    assert_eq!(r1.batch_size, 2);
    assert_eq!(r1.value.unwrap().to_f64_vec(), vec![6.0, 6.0, 1.0, 1.0]);
    assert_eq!(r2.value.unwrap().to_f64_vec(), vec![6.0, 6.0, 1.0, 1.0]);
}

#[test]
fn shutdown_drains_queued_work_then_rejects() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(2)
        .build();
    let h = chain(64, 4);
    let reg = h.program().reg_by_name("a").unwrap();
    let tickets: Vec<_> = (0..32)
        .map(|i| {
            server
                .submit(Request::with_handle(format!("t{}", i % 4), &h).read(reg))
                .unwrap()
        })
        .collect();
    server.shutdown();
    // Every accepted request was completed, not dropped …
    for t in tickets {
        assert_eq!(t.wait().unwrap().value.unwrap().to_f64_vec(), vec![4.0; 64]);
    }
    // … and new work is turned away.
    let after = server.submit(Request::with_handle("t0", &h)).unwrap_err();
    assert!(matches!(after.reason, ServeError::Shutdown));
    // Idempotent.
    server.shutdown();
}

#[test]
fn concurrent_stress_every_request_resolves_exactly_once() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 50;

    let rt = Runtime::builder().build_shared();
    let server = Arc::new(
        Server::builder(Arc::clone(&rt))
            .workers(2)
            .queue_capacity(CLIENTS * PER_CLIENT)
            .max_batch(8)
            .build(),
    );
    // Three program shapes cycling, so batches of mixed provenance form.
    let handles: Vec<ProgramHandle> = (1..=3).map(|k| chain(32, k)).collect();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let handles = handles.clone();
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let tickets: Vec<_> = (0..PER_CLIENT)
                    .map(|i| {
                        let h = &handles[(c + i) % handles.len()];
                        let reg = h.program().reg_by_name("a").unwrap();
                        server
                            .submit(Request::with_handle(format!("client-{c}"), h).read(reg))
                            .expect("capacity covers every in-flight request")
                    })
                    .collect();
                for (i, t) in tickets.into_iter().enumerate() {
                    let expected = ((c + i) % handles.len() + 1) as f64;
                    let r = t.wait().expect("no deadline, no invalid program");
                    assert_eq!(r.value.unwrap().to_f64_vec(), vec![expected; 32]);
                    ok += 1;
                }
                ok
            })
        })
        .collect();

    let total: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(total, CLIENTS * PER_CLIENT);
    server.shutdown();

    let report = server.report();
    assert_eq!(report.serve.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(report.serve.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(report.serve.resolved(), report.serve.submitted);
    assert_eq!(report.serve.failed + report.serve.expired, 0);
    assert_eq!(report.runtime.evals, (CLIENTS * PER_CLIENT) as u64);
    // Three distinct structures → exactly three optimiser runs, however
    // the requests raced (at worst a few concurrent misses).
    assert!(report.runtime.cache_misses <= 6, "{}", report.runtime);
    assert_eq!(report.serve.queue_depth, 0);
    assert!(report.serve.latency.count() >= 1);
}

#[test]
fn malformed_programs_bounce_at_admission_with_their_verify_code() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .build();
    // Reads `a0` before anything writes it: verifier code V200.
    let bad = ProgramHandle::new(parse_program("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n").unwrap());

    let rejected = server.submit(Request::with_handle("t", &bad)).unwrap_err();
    match &rejected.reason {
        ServeError::Malformed(errors) => {
            assert!(!errors.is_empty());
            assert_eq!(errors[0].code, bh_ir::VerifyCode::ReadBeforeWrite);
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
    // The request comes back intact, nothing was enqueued, and the
    // bounce is counted like any other rejection.
    assert_eq!(rejected.request.tenant(), "t");
    assert_eq!(server.queue_depth(), 0);
    assert!(!server.service_once());
    assert_eq!(server.stats().rejected, 1);

    // submit_wait surfaces the same structured error.
    match server.submit_wait(Request::with_handle("t", &bad)) {
        Err(ServeError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn submit_many_bounces_only_the_malformed_requests() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .build();
    let good = chain(8, 1);
    let bad = ProgramHandle::new(parse_program("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n").unwrap());

    let outcomes = server.submit_many(vec![
        Request::with_handle("t", &good),
        Request::with_handle("t", &bad),
        Request::with_handle("t", &good),
    ]);
    assert!(outcomes[0].is_ok());
    assert!(matches!(
        outcomes[1].as_ref().unwrap_err().reason,
        ServeError::Malformed(_)
    ));
    assert!(outcomes[2].is_ok());
    assert_eq!(server.queue_depth(), 2);

    // The two admitted requests (same digest, verified once) still run.
    while server.service_once() {}
    for outcome in outcomes.into_iter().flatten() {
        outcome.wait().unwrap();
    }
    assert_eq!(server.stats().rejected, 1);
    assert_eq!(server.stats().completed, 2);
}

#[test]
fn admission_lints_once_per_digest_and_never_rejects() {
    let server = Server::builder(Runtime::builder().build_shared())
        .workers(0)
        .build();
    // The first write is dead (overwritten before the sync): W100. The
    // program is still perfectly valid byte-code and must be served.
    let dusty = ProgramHandle::new(
        parse_program(
            "BH_IDENTITY a [0:4:1] 1\n\
             BH_IDENTITY a [0:4:1] 2\n\
             BH_SYNC a\n",
        )
        .unwrap(),
    );
    let reg = dusty.program().reg_by_name("a").unwrap();

    let first = server
        .submit(Request::with_handle("t", &dusty).read(reg))
        .unwrap();
    let warned = server.stats().lint_warnings;
    assert!(warned > 0, "expected at least the W100 dead store");

    // Repeat traffic on the admitted digest is not re-linted.
    let second = server
        .submit(Request::with_handle("t", &dusty).read(reg))
        .unwrap();
    assert_eq!(server.stats().lint_warnings, warned);

    // Advisory only: both requests complete with the right value.
    while server.service_once() {}
    for t in [first, second] {
        assert_eq!(t.wait().unwrap().value.unwrap().to_f64_vec(), vec![2.0; 4]);
    }
    assert_eq!(server.stats().rejected, 0);

    // A clean program moves nothing.
    let clean = chain(8, 1);
    let t = server
        .submit(Request::with_handle("t", &clean).read(clean.program().reg_by_name("a").unwrap()))
        .unwrap();
    while server.service_once() {}
    t.wait().unwrap();
    assert_eq!(server.stats().lint_warnings, warned);
}
