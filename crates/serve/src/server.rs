//! The multi-tenant batching server.
//!
//! ```text
//!  submit()/submit_many()──►[tenant lanes]──►(weighted round-robin leader pick)
//!                  │                    │
//!             backpressure      digest-keyed gather
//!            (QueueFull when    (same ProgramDigest,
//!             depth==capacity)   up to the batch limit)
//!                                       │
//!                                 ┌─────▼─────┐ prepare plan once,
//!                                 │ worker(s) │ pin one pooled VM,
//!                                 │  + AIMD   │ run batch back-to-back,
//!                                 │ controller│ adapt batch limit to SLO
//!                                 └─────┬─────┘
//!                                       │
//!                          Ticket::wait / try_wait / on_done
//! ```

use crate::error::ServeError;
use crate::request::{Request, Response, Slot, Ticket};
use crate::stats::{BatchLimitEvent, ServeReport, ServeStats, TenantQuotas};
use bh_ir::{Program, ProgramDigest, Reg};
use bh_observe::{Collect, MetricSet, TracePhase, TraceSink};
use bh_runtime::Runtime;
use bh_tensor::Tensor;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A submission the server bounced instead of enqueueing; holds the
/// request so the caller can retry or shed it deliberately.
#[derive(Debug)]
pub struct Rejected {
    /// The request, returned unconsumed.
    pub request: Request,
    /// Why it was rejected ([`ServeError::QueueFull`],
    /// [`ServeError::Malformed`] or [`ServeError::Shutdown`]).
    pub reason: ServeError,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request rejected: {}", self.reason)
    }
}

impl std::error::Error for Rejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.reason)
    }
}

/// Dropping the bounced request recovers the plain [`ServeError`], so a
/// function returning `Result<_, ServeError>` can `?` a failed
/// [`Server::submit`] directly.
impl From<Rejected> for ServeError {
    fn from(rejected: Rejected) -> ServeError {
        rejected.reason
    }
}

/// Most completed-request latencies a batch-limit decision aggregates
/// before acting: large enough that one straggler cannot flap the
/// limit at steady state. The actual window scales with the current
/// limit (see [`AdaptiveState::window_target`]) so small limits decide
/// — and ramp — in proportionally fewer requests.
const DECISION_WINDOW: usize = 16;

/// Upper bound on a tenant's scheduling weight. Keeps the smooth-WRR
/// credit arithmetic far from `i64` overflow (the total active weight
/// would need `capacity > 2^43` backlogged tenants to overflow) while
/// leaving six orders of magnitude of prioritisation headroom.
const MAX_TENANT_WEIGHT: u64 = 1 << 20;

/// How the per-worker batch limit is chosen (see DESIGN.md §9).
#[derive(Debug, Clone, Copy)]
struct BatchPolicy {
    /// Lower bound the limit can shrink to (≥ 1).
    floor: usize,
    /// Upper bound the limit can grow to.
    ceiling: usize,
    /// Target near-p95 in-batch service latency; `None` pins the limit at
    /// `ceiling` (fixed policy).
    slo: Option<Duration>,
}

impl BatchPolicy {
    fn controller(&self) -> BatchController {
        match self.slo {
            None => BatchController::Fixed {
                limit: self.ceiling,
            },
            Some(slo) => BatchController::Adaptive(AdaptiveState {
                floor: self.floor,
                ceiling: self.ceiling,
                slo,
                limit: self.floor,
                slow_start: true,
                window: Vec::with_capacity(DECISION_WINDOW),
            }),
        }
    }
}

/// One completed request's latencies. Turnaround feeds the
/// [`ServeStats`] histogram (what the caller experiences); the in-batch
/// service component drives the adaptive controller (what the batch
/// limit controls).
#[derive(Debug, Clone, Copy)]
struct LatencySample {
    /// Submission → completion: what the caller experiences. Includes
    /// queue wait, which measures *load*, not batch size.
    turnaround_nanos: u64,
    /// Batch-execution-start → completion: the component the batch
    /// limit actually controls (waiting behind earlier members of the
    /// same batch, plus plan preparation).
    service_nanos: u64,
}

/// AIMD batch-limit state, owned by one worker (or by the external
/// driver behind `service_once`). No cross-worker coordination: each
/// worker's input is the in-batch service latency of the batches *it*
/// executed — exactly the quantity its own limit controls — so
/// controllers neither need nor benefit from each other's state.
struct AdaptiveState {
    floor: usize,
    ceiling: usize,
    slo: Duration,
    limit: usize,
    /// Doubling phase (TCP-style slow start): left permanently after the
    /// first SLO slip, switching growth from ×2 to +1.
    slow_start: bool,
    /// Completed-request samples since the last decision.
    window: Vec<LatencySample>,
}

impl AdaptiveState {
    /// Samples a decision at the current limit waits for: about two
    /// batches' worth, clamped to `[DECISION_WINDOW/4, DECISION_WINDOW]`.
    /// Tying the window to the limit makes ramp-up take O(limit)
    /// requests instead of a fixed count per doubling, while decisions
    /// at large limits still average over a full window.
    fn window_target(&self) -> usize {
        (2 * self.limit).clamp(DECISION_WINDOW / 4, DECISION_WINDOW)
    }

    /// Fold one decision window, keyed on the window's high-percentile
    /// *in-batch service latency* — the latency component the limit
    /// actually controls. Turnaround (which adds queue wait) is
    /// deliberately not consulted: queue wait measures load, and no
    /// batch-limit move improves it — shrinking under a standing
    /// backlog cuts throughput and deepens the queue (congestion
    /// collapse), while growing is precisely what drains it. Queue wait
    /// is governed by `queue_capacity`, deadlines and backpressure
    /// instead.
    ///
    /// The statistic is the nearest-rank `floor(0.95·n)` sample, so at
    /// every reachable window size one straggler (page fault, allocator
    /// hiccup) is tolerated before a window counts as a slip.
    fn decide(&mut self) -> Option<(usize, Duration, bool)> {
        let mut nanos: Vec<u64> = std::mem::take(&mut self.window)
            .iter()
            .map(|s| s.service_nanos)
            .collect();
        nanos.sort_unstable();
        let rank = ((0.95 * nanos.len() as f64).floor() as usize).max(1);
        let service = Duration::from_nanos(nanos[rank - 1]);
        if service <= self.slo {
            if self.limit >= self.ceiling {
                return None;
            }
            self.limit = if self.slow_start {
                (self.limit * 2).min(self.ceiling)
            } else {
                self.limit + 1
            };
            return Some((self.limit, service, true));
        }
        self.slow_start = false;
        let shrunk = (self.limit / 2).max(self.floor);
        if shrunk == self.limit {
            return None;
        }
        self.limit = shrunk;
        Some((self.limit, service, false))
    }
}

/// Per-scheduling-context batch-limit controller.
enum BatchController {
    Fixed { limit: usize },
    Adaptive(AdaptiveState),
}

impl BatchController {
    fn limit(&self) -> usize {
        match self {
            BatchController::Fixed { limit } => *limit,
            BatchController::Adaptive(state) => state.limit,
        }
    }

    /// Feed completed-request samples; returns the decisions made (new
    /// limit, window p95 that drove it, grew) — at most a couple per
    /// batch.
    fn observe(&mut self, samples: &[LatencySample]) -> Vec<(usize, Duration, bool)> {
        let BatchController::Adaptive(state) = self else {
            return Vec::new();
        };
        let mut decisions = Vec::new();
        for s in samples {
            state.window.push(*s);
            if state.window.len() >= state.window_target() {
                decisions.extend(state.decide());
            }
        }
        decisions
    }
}

/// A request as it sits in a tenant lane.
struct Queued {
    program: Arc<Program>,
    digest: ProgramDigest,
    bindings: Vec<(Reg, Tensor)>,
    result: Option<Reg>,
    deadline: Option<Instant>,
    submitted: Instant,
    slot: Arc<Slot>,
    /// Tenant tag for trace events. Populated only when a trace sink is
    /// installed, so the untraced path never allocates for it.
    tenant: Option<Arc<str>>,
}

/// One backlogged tenant: its FIFO plus its smooth weighted round-robin
/// state.
struct TenantLane {
    queue: VecDeque<Queued>,
    /// Effective scheduling weight (≥ 1 — the starvation guard: zero
    /// weights are impossible, so every backlogged tenant is picked
    /// within one weight cycle).
    weight: u64,
    /// Smooth-WRR credit: raised by `weight` every pick round, lowered
    /// by the total active weight when this lane leads a batch.
    credit: i64,
}

/// Scheduler state behind one mutex: per-tenant FIFO lanes plus the
/// weighted service state. Lane state is dropped as soon as a tenant's
/// queue drains, so a long-lived server fed ephemeral tenant IDs does
/// not accumulate memory or scan cost (a returning tenant's round-robin
/// credit restarts at zero, which only ever *delays* its next turn by
/// less than one cycle).
struct Sched {
    /// Backlogged tenants, keyed by name. `BTreeMap` so leader election
    /// breaks credit ties deterministically (lexicographically first).
    lanes: BTreeMap<String, TenantLane>,
    queued: usize,
    /// Configured per-tenant weight overrides (from the builder).
    weights: HashMap<String, u64>,
    default_weight: u64,
    /// Requests dequeued per tenant (leader picks and digest-gathered
    /// followers alike) — the service side of the quota metrics.
    quotas: TenantQuotas,
}

impl Sched {
    fn enqueue(&mut self, tenant: &str, request: Queued) {
        match self.lanes.get_mut(tenant) {
            Some(lane) => lane.queue.push_back(request),
            None => {
                let weight = self
                    .weights
                    .get(tenant)
                    .copied()
                    .unwrap_or(self.default_weight);
                self.lanes.insert(
                    tenant.to_owned(),
                    TenantLane {
                        queue: VecDeque::from([request]),
                        weight,
                        credit: 0,
                    },
                );
            }
        }
        self.queued += 1;
    }

    /// Pop the next micro-batch, or `None` when nothing is queued.
    ///
    /// The *leader* comes from smooth weighted round-robin over the
    /// backlogged lanes: every lane's credit grows by its weight, the
    /// richest lane (ties broken by name order) is picked and pays the
    /// total active weight. Over any window where the backlogged set is
    /// stable, leader picks are proportional to weights within ±1 per
    /// tenant — that is the fairness guarantee, and weights ≥ 1 make
    /// starvation impossible. The rest of the batch is every queued
    /// request (any tenant) whose digest matches the leader's, up to
    /// `max_batch`; pulling a matching request forward never delays
    /// anyone else.
    fn next_batch(&mut self, max_batch: usize) -> Option<Vec<Queued>> {
        if self.lanes.is_empty() {
            return None;
        }
        let total: i64 = self.lanes.values().map(|lane| lane.weight as i64).sum();
        for lane in self.lanes.values_mut() {
            lane.credit += lane.weight as i64;
        }
        // Richest lane wins; credit ties break to the lexicographically
        // first name (max_by with the name order reversed), so
        // scheduling is deterministic. One name clone per batch.
        let tenant = self
            .lanes
            .iter()
            .max_by(|a, b| a.1.credit.cmp(&b.1.credit).then_with(|| b.0.cmp(a.0)))
            .map(|(name, _)| name.clone())
            .expect("lanes is non-empty");
        let lane = self.lanes.get_mut(&tenant).expect("leader lane exists");
        lane.credit -= total;
        let leader = lane.queue.pop_front().expect("empty lanes are removed");
        self.queued -= 1;
        self.quotas.note(&tenant, 1);

        let mut batch = vec![leader];
        if max_batch > 1 {
            for (name, lane) in self.lanes.iter_mut() {
                let mut from_lane = 0u64;
                while batch.len() < max_batch {
                    let Some(i) = lane.queue.iter().position(|r| r.digest == batch[0].digest)
                    else {
                        break;
                    };
                    batch.push(lane.queue.remove(i).expect("index in range"));
                    self.queued -= 1;
                    from_lane += 1;
                }
                if from_lane > 0 {
                    self.quotas.note(name, from_lane);
                }
                if batch.len() >= max_batch {
                    break;
                }
            }
        }
        // Drop drained lanes entirely (memory bound for ephemeral IDs).
        self.lanes.retain(|_, lane| !lane.queue.is_empty());
        Some(batch)
    }
}

struct Shared {
    runtime: Arc<Runtime>,
    capacity: usize,
    policy: BatchPolicy,
    default_deadline: Option<Duration>,
    sched: Mutex<Sched>,
    work: Condvar,
    stats: Mutex<ServeStats>,
    shutdown: AtomicBool,
    /// Batch-limit controller for the external-driver path
    /// ([`Server::service_once`] and the shutdown drain); worker threads
    /// own their controllers locally.
    external_ctl: Mutex<BatchController>,
    /// Digests whose programs already passed admission verification, so
    /// repeat traffic pays one `HashSet` probe instead of a re-verify —
    /// the admission-side mirror of the runtime's transformation cache.
    /// Bounded (see [`ADMITTED_DIGEST_LIMIT`]); eviction merely costs a
    /// re-verify, never admits anything unverified.
    admitted: Mutex<HashSet<ProgramDigest>>,
    /// Optional request-lifecycle trace sink (`"queue"` and `"batch"`
    /// span events). `None` — the default — keeps the serving path free
    /// of tracing cost beyond one branch per would-be event.
    tracer: Option<Arc<dyn TraceSink>>,
}

/// Known-good digests remembered at admission before the set is reset.
/// 4096 digests ≈ a few hundred KiB — far above any realistic working
/// set of distinct programs, small enough that hostile digest churn
/// cannot balloon memory.
const ADMITTED_DIGEST_LIMIT: usize = 4096;

impl Shared {
    /// Emit one trace event when a sink is installed. Callers that would
    /// pay to build the arguments (fingerprint hash, tenant clone) guard
    /// on [`Shared::tracing`] first.
    #[inline]
    fn trace(
        &self,
        phase: TracePhase,
        stage: &'static str,
        fingerprint: u64,
        tenant: Option<Arc<str>>,
    ) {
        if let Some(tracer) = &self.tracer {
            tracer.record(phase, stage, fingerprint, tenant);
        }
    }

    /// Whether a trace sink is installed (one branch).
    #[inline]
    fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Admission gate: verify the submitted byte-code before it can be
    /// enqueued, so malformed programs are bounced at the front door with
    /// a structured [`ServeError::Malformed`] instead of occupying queue
    /// space and failing later inside a batch. Verification runs once per
    /// distinct digest; known-good digests are admitted on a set probe.
    ///
    /// Called *outside* the sched lock — verification cost must never
    /// stall other submitters or the workers.
    #[allow(clippy::result_large_err)]
    fn admit(&self, request: Request) -> Result<Request, Rejected> {
        if self.admitted.lock().contains(&request.digest) {
            return Ok(request);
        }
        match bh_ir::verify(&request.program) {
            Ok(_) => {
                // Advisory W-code lints ride along with first-admission
                // verification: counted for dashboards, never a rejection,
                // and never re-run for a digest the set remembers.
                let warnings = request.program.lint().len() as u64;
                if warnings > 0 {
                    self.stats.lock().lint_warnings += warnings;
                }
                let mut admitted = self.admitted.lock();
                if admitted.len() >= ADMITTED_DIGEST_LIMIT {
                    admitted.clear();
                }
                admitted.insert(request.digest.clone());
                Ok(request)
            }
            Err(errors) => Err(Rejected {
                reason: ServeError::Malformed(errors),
                request,
            }),
        }
    }

    /// Execute one micro-batch, resolving every request in it. Returns
    /// the completed requests' latency samples for the caller's batch
    /// controller (empty when nothing completed).
    fn process_batch(&self, batch: Vec<Queued>) -> Vec<LatencySample> {
        let started = Instant::now();
        let mut expired = 0u64;
        let mut live = Vec::with_capacity(batch.len());
        for r in batch {
            // Every dequeued request ends its queue span here — expired
            // ones too: they did wait, and a flight recorder that hides
            // that would point debugging away from the queue.
            if self.tracing() {
                self.trace(
                    TracePhase::End,
                    "queue",
                    r.digest.fingerprint(),
                    r.tenant.clone(),
                );
            }
            match r.deadline {
                Some(d) if d < started => {
                    expired += 1;
                    r.slot.complete(Err(ServeError::DeadlineExceeded {
                        missed_by: started - d,
                    }));
                }
                _ => live.push(r),
            }
        }
        if live.is_empty() {
            if expired > 0 {
                self.stats.lock().expired += expired;
            }
            return Vec::new();
        }

        let batch_size = live.len();
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut samples: Vec<LatencySample> = Vec::with_capacity(batch_size);
        let traced = self.tracing();
        let leader_fp = if traced {
            live[0].digest.fingerprint()
        } else {
            0
        };
        self.trace(TracePhase::Begin, "batch", leader_fp, None);

        // One plan lookup (or one optimiser run) for the whole batch …
        match self.runtime.prepare(&live[0].program) {
            Err(e) => {
                failed = live.len() as u64;
                for r in live {
                    r.slot.complete(Err(ServeError::Eval(e.clone())));
                }
            }
            Ok((plan, first_hit)) => {
                // Queue wait is a profiled stage like any other: charge
                // each request's wait to its digest. Recorded after
                // `prepare` so the profile entry exists even for the
                // first-ever batch of a digest ([`bh_observe::
                // ProfileTable::record_queue_wait`] drops samples for
                // digests it has never seen planned).
                if let Some(table) = self.runtime.profile_table() {
                    let fp = plan.source_fingerprint;
                    for r in &live {
                        table.record_queue_wait(fp, started.saturating_duration_since(r.submitted));
                    }
                }
                // … and one pinned VM. Same-plan runs back-to-back reuse
                // its base buffers only when that is provably invisible:
                // the plan must never read residue (`rerun_safe`, see
                // DESIGN.md §7) *and* the request must re-bind every
                // declared input — otherwise a request omitting a binding
                // would read the previous request's data. Any other case
                // pays a recycle, never a wrong answer.
                let plan_reusable = bh_ir::analysis::rerun_safe(&plan.program);
                let input_regs: Vec<Reg> = plan
                    .program
                    .bases()
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.is_input)
                    .map(|(i, _)| Reg(i as u32))
                    .collect();
                let mut vm = self.runtime.lease_vm();
                let mut vm_dirty = false;
                let mut cache_hit = first_hit;
                for r in live {
                    let now = Instant::now();
                    if let Some(d) = r.deadline {
                        if d < now {
                            expired += 1;
                            r.slot
                                .complete(Err(ServeError::DeadlineExceeded { missed_by: now - d }));
                            continue;
                        }
                    }
                    let reuse_ok = plan_reusable
                        && input_regs
                            .iter()
                            .all(|reg| r.bindings.iter().any(|(bound, _)| bound == reg));
                    if vm_dirty && !reuse_ok {
                        vm.recycle();
                    }
                    vm_dirty = match self.runtime.eval_prepared(
                        &plan,
                        &mut vm,
                        &r.bindings,
                        r.result,
                        cache_hit,
                    ) {
                        Ok((value, outcome)) => {
                            let done = Instant::now();
                            completed += 1;
                            let as_nanos =
                                |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                            samples.push(LatencySample {
                                turnaround_nanos: as_nanos(done - r.submitted),
                                service_nanos: as_nanos(done - started),
                            });
                            r.slot.complete(Ok(Response {
                                value,
                                outcome,
                                batch_size,
                                queue_wait: started.saturating_duration_since(r.submitted),
                                turnaround: done - r.submitted,
                            }));
                            true
                        }
                        Err(e) => {
                            failed += 1;
                            r.slot.complete(Err(ServeError::Eval(e)));
                            // A failed run may leave partial register
                            // state; start the rest of the batch clean.
                            vm.recycle();
                            false
                        }
                    };
                    cache_hit = true;
                }
            }
        }
        self.trace(TracePhase::End, "batch", leader_fp, None);

        let mut stats = self.stats.lock();
        stats.batches += 1;
        stats.batch_sizes.record(batch_size);
        stats.completed += completed;
        stats.failed += failed;
        stats.expired += expired;
        for s in &samples {
            stats
                .latency
                .record(Duration::from_nanos(s.turnaround_nanos));
        }
        drop(stats);
        samples
    }

    /// Feed a batch's samples to a controller and record any limit
    /// decisions in the stats timeline.
    fn note_decisions(&self, ctl: &mut BatchController, samples: &[LatencySample]) {
        let decisions = ctl.observe(samples);
        if decisions.is_empty() {
            return;
        }
        let mut stats = self.stats.lock();
        let batch_seq = stats.batches;
        for (limit, window_p95, grew) in decisions {
            stats.batch_limits.record(BatchLimitEvent {
                batch_seq,
                limit,
                window_p95,
                grew,
            });
        }
    }

    fn worker_loop(&self) {
        let mut ctl = self.policy.controller();
        loop {
            let batch = {
                let mut sched = self.sched.lock();
                loop {
                    if let Some(batch) = sched.next_batch(ctl.limit()) {
                        break batch;
                    }
                    // Drain before exit: shutdown only stops the loop once
                    // the queues are empty.
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    sched = self.work.wait(sched).unwrap_or_else(|e| e.into_inner());
                }
            };
            let samples = self.process_batch(batch);
            self.note_decisions(&mut ctl, &samples);
        }
    }
}

/// Configures and builds a [`Server`].
///
/// # Examples
///
/// The adaptive configuration (see DESIGN.md §9 for the control loop):
///
/// ```
/// use bh_runtime::Runtime;
/// use bh_serve::Server;
/// use std::time::Duration;
///
/// let server = Server::builder(Runtime::builder().build_shared())
///     .workers(2)
///     .queue_capacity(1024)
///     .max_batch(64)                                // adaptive ceiling
///     .adaptive_batch(Duration::from_millis(5))     // p95 batching-latency SLO
///     .tenant_weight("paying-tenant", 3)            // 3× the default share
///     .default_deadline(Duration::from_millis(50))
///     .build();
/// # drop(server);
/// ```
pub struct ServerBuilder {
    runtime: Arc<Runtime>,
    workers: usize,
    queue_capacity: usize,
    min_batch: usize,
    max_batch: usize,
    batch_slo: Option<Duration>,
    default_deadline: Option<Duration>,
    default_tenant_weight: u64,
    tenant_weights: HashMap<String, u64>,
    tracer: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for ServerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerBuilder")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("min_batch", &self.min_batch)
            .field("max_batch", &self.max_batch)
            .field("batch_slo", &self.batch_slo)
            .field("default_deadline", &self.default_deadline)
            .field("default_tenant_weight", &self.default_tenant_weight)
            .field("tenant_weights", &self.tenant_weights)
            .field("has_tracer", &self.tracer.is_some())
            .finish_non_exhaustive()
    }
}

impl ServerBuilder {
    /// Worker threads executing batches. `0` is allowed: no threads are
    /// spawned and batches run only when [`Server::service_once`] is
    /// called (deterministic embedding/testing mode). Default: 1.
    pub fn workers(mut self, workers: usize) -> ServerBuilder {
        self.workers = workers;
        self
    }

    /// Total queued requests across all tenants before submissions are
    /// rejected with [`ServeError::QueueFull`]. Minimum 1; default 1024.
    pub fn queue_capacity(mut self, capacity: usize) -> ServerBuilder {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Most requests grouped into one digest-keyed micro-batch. Under
    /// the default fixed policy this *is* the batch limit; under
    /// [`ServerBuilder::adaptive_batch`] it is the ceiling the limit can
    /// grow to. Minimum 1 (disables batching); default 16.
    pub fn max_batch(mut self, max_batch: usize) -> ServerBuilder {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Floor the adaptive batch limit can shrink to. Only meaningful
    /// with [`ServerBuilder::adaptive_batch`] (the fixed policy pins the
    /// limit at [`ServerBuilder::max_batch`]). Minimum 1; default 1;
    /// clamped to at most `max_batch` at build time.
    pub fn min_batch(mut self, min_batch: usize) -> ServerBuilder {
        self.min_batch = min_batch.max(1);
        self
    }

    /// Enable load-aware batch sizing: `slo` is a high-percentile
    /// budget for the *in-batch service latency* — the time a request
    /// spends from its batch starting execution to its completion,
    /// i.e. the latency the batcher itself adds (queue wait is governed
    /// by [`ServerBuilder::queue_capacity`], deadlines and
    /// backpressure, not by the batch limit). Each scheduling context
    /// (worker thread, or the external driver behind
    /// [`Server::service_once`]) starts at [`ServerBuilder::min_batch`]
    /// and decides per latency window — `2 × limit` completed requests,
    /// clamped to 4..=16, so small limits ramp in proportionally fewer
    /// requests. While the window's near-p95 service latency holds the
    /// SLO the limit doubles (slow start), then grows by 1; when it
    /// slips, the limit halves — never past
    /// [`ServerBuilder::max_batch`] or below `min_batch`. Every
    /// decision is recorded in [`ServeStats::batch_limits`]. The loop
    /// is specified in DESIGN.md §9. Default: off (fixed limit of
    /// `max_batch`).
    pub fn adaptive_batch(mut self, slo: Duration) -> ServerBuilder {
        self.batch_slo = Some(slo);
        self
    }

    /// Deadline applied to requests that do not carry their own.
    /// Default: none (requests wait indefinitely).
    pub fn default_deadline(mut self, deadline: Duration) -> ServerBuilder {
        self.default_deadline = Some(deadline);
        self
    }

    /// Scheduling weight for one tenant: under backlog it is picked as
    /// batch leader `weight` times per round-robin cycle, so two
    /// flooding tenants with weights 2 and 1 see a ~2:1 service ratio.
    /// Clamped to `1..=2^20` (a tenant can be deprioritised, never
    /// starved, and credit arithmetic stays far from overflow).
    /// Default: the [`ServerBuilder::default_tenant_weight`].
    pub fn tenant_weight(mut self, tenant: impl Into<String>, weight: u64) -> ServerBuilder {
        self.tenant_weights
            .insert(tenant.into(), weight.clamp(1, MAX_TENANT_WEIGHT));
        self
    }

    /// Weight for tenants without an explicit
    /// [`ServerBuilder::tenant_weight`]. Clamped to `1..=2^20`;
    /// default 1.
    pub fn default_tenant_weight(mut self, weight: u64) -> ServerBuilder {
        self.default_tenant_weight = weight.clamp(1, MAX_TENANT_WEIGHT);
        self
    }

    /// Install a request-lifecycle trace sink (e.g.
    /// [`bh_observe::RingTraceSink::shared`]). The server emits
    /// tenant-tagged `"queue"` spans (begin at enqueue, end when the
    /// request is pulled into a batch) and `"batch"` spans around each
    /// micro-batch's execution. Pass the *same* sink to
    /// [`bh_runtime::RuntimeBuilder::trace_sink`] to interleave the
    /// runtime's optimise/verify/bind/execute/read-back spans into one
    /// timeline. Default: no sink — tracing costs one branch per
    /// would-be event and nothing else.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> ServerBuilder {
        self.tracer = Some(sink);
        self
    }

    /// Build the server and spawn its workers.
    pub fn build(self) -> Server {
        let policy = BatchPolicy {
            floor: self.min_batch.min(self.max_batch),
            ceiling: self.max_batch,
            slo: self.batch_slo,
        };
        let shared = Arc::new(Shared {
            runtime: self.runtime,
            capacity: self.queue_capacity,
            policy,
            default_deadline: self.default_deadline,
            sched: Mutex::new(Sched {
                lanes: BTreeMap::new(),
                queued: 0,
                weights: self.tenant_weights,
                default_weight: self.default_tenant_weight,
                quotas: TenantQuotas::default(),
            }),
            work: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            shutdown: AtomicBool::new(false),
            external_ctl: Mutex::new(policy.controller()),
            admitted: Mutex::new(HashSet::new()),
            tracer: self.tracer,
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bh-serve-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }
}

/// Multi-tenant batching front door over an [`Arc<Runtime>`].
///
/// Concurrent requests whose programs share a structural digest are
/// grouped and executed back-to-back on one pinned, recycled VM, so plan
/// lookup and VM setup amortise across the batch; tenants are served by
/// smooth weighted round-robin; a bounded queue rejects (rather than
/// buffers) overload; per-request deadlines fail fast; and an optional
/// adaptive policy resizes batches against a latency SLO (DESIGN.md §§
/// 8–9 specify the scheduling and control-loop invariants).
///
/// # Examples
///
/// ```
/// use bh_ir::parse_program;
/// use bh_runtime::Runtime;
/// use bh_serve::{ProgramHandle, Request, Server};
///
/// let server = Server::builder(Runtime::builder().build_shared())
///     .workers(2)
///     .queue_capacity(256)
///     .max_batch(8)
///     .build();
///
/// let handle = ProgramHandle::new(parse_program(
///     "BH_IDENTITY a [0:16:1] 0\nBH_ADD a a 3\nBH_SYNC a\n",
/// )?);
/// let reg = handle.program().reg_by_name("a").unwrap();
///
/// let ticket = server
///     .submit(Request::with_handle("tenant-a", &handle).read(reg))
///     .map_err(|r| r.reason)?;
/// let response = ticket.wait()?;
/// assert_eq!(response.value.unwrap().to_f64_vec(), vec![3.0; 16]);
/// server.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start configuring a server over `runtime`. Defaults: 1 worker,
    /// queue capacity 1024, fixed batch limit 16, no default deadline,
    /// every tenant at weight 1.
    pub fn builder(runtime: Arc<Runtime>) -> ServerBuilder {
        ServerBuilder {
            runtime,
            workers: 1,
            queue_capacity: 1024,
            min_batch: 1,
            max_batch: 16,
            batch_slo: None,
            default_deadline: None,
            default_tenant_weight: 1,
            tenant_weights: HashMap::new(),
            tracer: None,
        }
    }

    /// The runtime requests execute on.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.shared.runtime
    }

    /// Shutdown/capacity checks plus the enqueue itself, under the
    /// caller-held sched lock. Stats accounting is left to the caller so
    /// batched submissions update them once.
    #[allow(clippy::result_large_err)]
    fn try_enqueue(
        &self,
        sched: &mut Sched,
        request: Request,
        now: Instant,
    ) -> Result<Arc<Slot>, Rejected> {
        // Checked *under the sched lock*: shutdown sets the flag under
        // the same lock, so a submission either sees it (rejected) or
        // its enqueue is visible to the draining workers — an accepted
        // ticket can never be left unresolved.
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(Rejected {
                request,
                reason: ServeError::Shutdown,
            });
        }
        if sched.queued >= self.shared.capacity {
            return Err(Rejected {
                request,
                reason: ServeError::QueueFull {
                    capacity: self.shared.capacity,
                },
            });
        }
        let deadline = request
            .deadline
            .or(self.shared.default_deadline)
            .map(|d| now + d);
        let slot = Slot::new();
        // Tenant tag + queue-span begin only when a sink is installed:
        // the untraced path pays one branch, no allocation, no hash.
        let tenant_tag: Option<Arc<str>> = if self.shared.tracing() {
            let tag: Arc<str> = Arc::from(request.tenant.as_str());
            self.shared.trace(
                TracePhase::Begin,
                "queue",
                request.digest.fingerprint(),
                Some(Arc::clone(&tag)),
            );
            Some(tag)
        } else {
            None
        };
        sched.enqueue(
            &request.tenant,
            Queued {
                program: request.program,
                digest: request.digest,
                bindings: request.bindings,
                result: request.result,
                deadline,
                submitted: now,
                slot: Arc::clone(&slot),
                tenant: tenant_tag,
            },
        );
        Ok(slot)
    }

    /// Enqueue a request, returning a [`Ticket`] to wait on.
    ///
    /// The submitted byte-code is verified at admission (once per
    /// distinct program digest): malformed programs are bounced here
    /// with the structured verification findings, never enqueued.
    ///
    /// # Errors
    ///
    /// [`Rejected`] with [`ServeError::Malformed`] when the program fails
    /// byte-code verification, [`ServeError::QueueFull`] when the bounded
    /// queue is at capacity (backpressure — the request is handed back,
    /// not buffered), or [`ServeError::Shutdown`] after shutdown began.
    // Handing the whole Request back by value is the point of the error
    // type (retry without rebuilding); the fat Err is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: Request) -> Result<Ticket, Rejected> {
        let now = Instant::now();
        let request = match self.shared.admit(request) {
            Ok(request) => request,
            Err(rejected) => {
                self.shared.stats.lock().rejected += 1;
                return Err(rejected);
            }
        };
        {
            let mut sched = self.shared.sched.lock();
            match self.try_enqueue(&mut sched, request, now) {
                Ok(slot) => {
                    let depth = sched.queued;
                    // Counted before the enqueue becomes visible to workers
                    // (the sched lock is still held), so a snapshot can never
                    // observe a resolution that outruns its own submission
                    // count.
                    let mut stats = self.shared.stats.lock();
                    stats.submitted += 1;
                    stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
                    drop(stats);
                    drop(sched);
                    self.shared.work.notify_one();
                    Ok(Ticket { slot })
                }
                Err(rejected) => {
                    drop(sched);
                    self.shared.stats.lock().rejected += 1;
                    Err(rejected)
                }
            }
        }
    }

    /// Enqueue a pre-batched group of requests under one lock
    /// acquisition, returning a per-request outcome in submission order.
    ///
    /// Cheaper than N [`Server::submit`] calls for bulk producers (one
    /// sched-lock round trip, one stats update, one worker wake-up), and
    /// same-digest requests submitted together are adjacent in their
    /// lanes, so they gather into the same micro-batch. Each request is
    /// accepted or bounced individually — a full queue rejects the
    /// overflow, not the whole group, and a program failing admission
    /// verification bounces only its own request.
    ///
    /// # Examples
    ///
    /// ```
    /// use bh_ir::parse_program;
    /// use bh_runtime::Runtime;
    /// use bh_serve::{ProgramHandle, Request, Server};
    ///
    /// let server = Server::builder(Runtime::builder().build_shared()).build();
    /// let handle = ProgramHandle::new(parse_program(
    ///     "BH_IDENTITY a [0:8:1] 1\nBH_SYNC a\n",
    /// )?);
    /// let outcomes = server.submit_many(
    ///     (0..32).map(|i| Request::with_handle(format!("tenant-{}", i % 4), &handle)),
    /// );
    /// for ticket in outcomes.into_iter().collect::<Result<Vec<_>, _>>()? {
    ///     ticket.wait()?;
    /// }
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    // The closures below return the deliberately fat Rejected (see
    // `submit`); boxing it would cost every accepted request too.
    #[allow(clippy::result_large_err)]
    pub fn submit_many(
        &self,
        requests: impl IntoIterator<Item = Request>,
    ) -> Vec<Result<Ticket, Rejected>> {
        let now = Instant::now();
        // Drained *before* taking the scheduler lock: a lazy iterator
        // must not stall workers and submitters for its whole duration,
        // and one calling back into this server (queue_depth, submit, …)
        // must not self-deadlock on the non-reentrant sched mutex.
        // Admission verification also happens out here, for the same
        // reason: verifying a cold digest must not stall the scheduler.
        let requests: Vec<Result<Request, Rejected>> = requests
            .into_iter()
            .map(|request| self.shared.admit(request))
            .collect();
        let mut out = Vec::with_capacity(requests.len());
        let mut accepted = 0u64;
        let mut bounced = 0u64;
        {
            let mut sched = self.shared.sched.lock();
            for request in requests {
                match request.and_then(|r| self.try_enqueue(&mut sched, r, now)) {
                    Ok(slot) => {
                        accepted += 1;
                        out.push(Ok(Ticket { slot }));
                    }
                    Err(rejected) => {
                        bounced += 1;
                        out.push(Err(rejected));
                    }
                }
            }
            let depth = sched.queued;
            let mut stats = self.shared.stats.lock();
            stats.submitted += accepted;
            stats.rejected += bounced;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }
        match accepted {
            0 => {}
            1 => self.shared.work.notify_one(),
            _ => self.shared.work.notify_all(),
        }
        out
    }

    /// Submit and block for the outcome (per-call convenience).
    ///
    /// # Errors
    ///
    /// Rejection reasons or the request's resolution error.
    pub fn submit_wait(&self, request: Request) -> Result<Response, ServeError> {
        match self.submit(request) {
            Ok(ticket) => ticket.wait(),
            Err(rejected) => Err(rejected.reason),
        }
    }

    /// Execute at most one pending micro-batch on the calling thread.
    /// Returns false when nothing was queued. This is the entire
    /// scheduling path minus the worker threads — the deterministic mode
    /// for tests and for embedding the server in an external event loop
    /// (build with `.workers(0)`). The external driver has its own
    /// batch-limit controller, adapted by the batches it executes.
    pub fn service_once(&self) -> bool {
        // The controller lock is never held across the batch itself, so
        // completion callbacks are free to call back into the server
        // (submit, service_once, stats) without self-deadlocking.
        let limit = self.shared.external_ctl.lock().limit();
        let batch = self.shared.sched.lock().next_batch(limit);
        match batch {
            Some(batch) => {
                let samples = self.shared.process_batch(batch);
                self.shared
                    .note_decisions(&mut self.shared.external_ctl.lock(), &samples);
                true
            }
            None => false,
        }
    }

    /// Requests queued right now (across all tenants).
    pub fn queue_depth(&self) -> usize {
        self.shared.sched.lock().queued
    }

    /// Tenants with queued work right now. Tenant state is dropped the
    /// moment a tenant's queue drains, so this — not the lifetime number
    /// of distinct tenant IDs — bounds scheduler memory and scan cost.
    pub fn active_tenants(&self) -> usize {
        self.shared.sched.lock().lanes.len()
    }

    /// Scheduler-level counters. Counters are updated after the requests
    /// of a batch resolve, so a snapshot racing an in-flight batch may
    /// momentarily trail the tickets it has already completed; snapshots
    /// taken after [`Server::shutdown`] (or between
    /// [`Server::service_once`] calls) are exact.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.shared.stats.lock().clone();
        let sched = self.shared.sched.lock();
        stats.queue_depth = sched.queued;
        stats.tenants = sched.quotas.clone();
        stats
    }

    /// Combined scheduler + runtime snapshot.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            serve: self.stats(),
            runtime: self.shared.runtime.stats(),
        }
    }

    /// One machine-readable snapshot of everything this server observes:
    /// the scheduler counters (`bh_serve_*`), the runtime and VM counters
    /// (`bh_runtime_*`, `bh_vm_*`) and — when runtime profiling is on —
    /// the per-digest profile families (`bh_profile_*`, hottest
    /// [`bh_observe::EXPORT_TOP_K`] digests). Render the result with
    /// [`MetricSet::to_prometheus`] for a scrape endpoint or
    /// [`MetricSet::to_json`] for logs and dashboards; the family names
    /// are a stable, golden-tested contract (DESIGN.md §13).
    pub fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        self.stats().collect_into(&mut set);
        self.shared.runtime.stats().collect_into(&mut set);
        if let Some(table) = self.shared.runtime.profile_table() {
            table.collect_into(&mut set);
        }
        set
    }

    /// Stop accepting submissions, drain every queued request, and join
    /// the workers. Queued work is *completed*, not dropped; only
    /// subsequent submissions are rejected (with
    /// [`ServeError::Shutdown`]). Idempotent; also runs on drop.
    ///
    /// Must not be called from a worker-executed callback (it joins the
    /// worker threads).
    pub fn shutdown(&self) {
        {
            // Under the sched lock, to serialise against submit(): every
            // request accepted before this point is visible to the drain.
            let _sched = self.shared.sched.lock();
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.work.notify_all();
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        // With zero workers (or if callers raced a submit past the flag),
        // drain the remainder on this thread so every accepted request
        // still resolves exactly once.
        while self.service_once() {}
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.lock().len())
            .field("capacity", &self.shared.capacity)
            .field("batch_floor", &self.shared.policy.floor)
            .field("batch_ceiling", &self.shared.policy.ceiling)
            .field("batch_slo", &self.shared.policy.slo)
            .field("queued", &self.queue_depth())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive(floor: usize, ceiling: usize, slo_ms: u64) -> BatchController {
        BatchPolicy {
            floor,
            ceiling,
            slo: Some(Duration::from_millis(slo_ms)),
        }
        .controller()
    }

    fn sample(turnaround_ms: u64, service_ms: u64) -> LatencySample {
        LatencySample {
            turnaround_nanos: turnaround_ms * 1_000_000,
            service_nanos: service_ms * 1_000_000,
        }
    }

    /// Feed `n` identical samples whose turnaround and in-batch service
    /// latency are both `latency_ms` (no queue wait).
    fn feed(ctl: &mut BatchController, latency_ms: u64, n: usize) -> Vec<(usize, Duration, bool)> {
        ctl.observe(&vec![sample(latency_ms, latency_ms); n])
    }

    #[test]
    fn fixed_controller_never_moves() {
        let mut ctl = BatchPolicy {
            floor: 1,
            ceiling: 16,
            slo: None,
        }
        .controller();
        assert_eq!(ctl.limit(), 16);
        assert!(feed(&mut ctl, 1_000, 64).is_empty());
        assert_eq!(ctl.limit(), 16);
    }

    /// Samples one decision waits for at `limit` (mirrors
    /// `AdaptiveState::window_target`).
    fn window_at(limit: usize) -> usize {
        (2 * limit).clamp(DECISION_WINDOW / 4, DECISION_WINDOW)
    }

    #[test]
    fn adaptive_slow_start_doubles_then_grows_additively() {
        let mut ctl = adaptive(1, 64, 10);
        // Under the SLO: 1 → 2 → 4 … (slow start), each decision waiting
        // for the current limit's window.
        assert_eq!(
            feed(&mut ctl, 1, window_at(1)),
            vec![(2, Duration::from_millis(1), true)]
        );
        feed(&mut ctl, 1, window_at(2));
        assert_eq!(ctl.limit(), 4);
        // One slip halves and ends slow start: 4 → 2.
        let d = feed(&mut ctl, 100, window_at(4));
        assert_eq!(d, vec![(2, Duration::from_millis(100), false)]);
        // Back under the SLO: additive growth now, 2 → 3.
        feed(&mut ctl, 1, window_at(2));
        assert_eq!(ctl.limit(), 3);
    }

    #[test]
    fn adaptive_window_scales_with_the_limit_within_bounds() {
        let mut ctl = adaptive(1, 64, 10);
        // Ramp is O(limit): 4 samples at limit 1, never more than a full
        // window however large the limit.
        assert_eq!(window_at(1), DECISION_WINDOW / 4);
        assert_eq!(window_at(64), DECISION_WINDOW);
        // One sample short of the target: no decision yet.
        assert!(feed(&mut ctl, 1, window_at(1) - 1).is_empty());
        assert_eq!(feed(&mut ctl, 1, 1).len(), 1);
        assert_eq!(ctl.limit(), 2);
    }

    #[test]
    fn adaptive_limit_respects_floor_and_ceiling() {
        let mut ctl = adaptive(2, 8, 10);
        ctl = match ctl {
            BatchController::Adaptive(mut s) => {
                s.limit = 8;
                BatchController::Adaptive(s)
            }
            fixed => fixed,
        };
        // At the ceiling, staying under the SLO records nothing.
        assert!(feed(&mut ctl, 1, window_at(8)).is_empty());
        assert_eq!(ctl.limit(), 8);
        // Slips: 8 → 4 → 2, then pinned at the floor.
        feed(&mut ctl, 100, window_at(8));
        feed(&mut ctl, 100, window_at(4));
        assert_eq!(ctl.limit(), 2);
        assert!(feed(&mut ctl, 100, window_at(2)).is_empty());
        assert_eq!(ctl.limit(), 2);
    }

    #[test]
    fn decision_tolerates_one_straggler_but_not_two() {
        let mut ctl = adaptive(1, 8, 10);
        ctl = match ctl {
            BatchController::Adaptive(mut s) => {
                s.limit = 8;
                BatchController::Adaptive(s)
            }
            fixed => fixed,
        };
        // The decision rank is floor(0.95·16) = 15 of 16: a single
        // outlier (page fault, allocator hiccup) cannot flap the limit …
        assert_eq!(window_at(8), DECISION_WINDOW);
        let mut one_straggler = vec![sample(1, 1); DECISION_WINDOW - 1];
        one_straggler.push(sample(100, 100));
        assert!(
            ctl.observe(&one_straggler).is_empty(),
            "one straggler at the ceiling must not shrink"
        );
        assert_eq!(ctl.limit(), 8);
        // … but two stragglers put the rank-15 sample over the SLO, a
        // genuine slip (even though the window mean is far under it).
        let mut two_stragglers = vec![sample(1, 1); DECISION_WINDOW - 2];
        two_stragglers.extend([sample(100, 100); 2]);
        let d = ctl.observe(&two_stragglers);
        assert_eq!(d, vec![(4, Duration::from_millis(100), false)]);
    }

    #[test]
    fn overload_grows_on_service_headroom_instead_of_collapsing() {
        // Turnaround blows any SLO under a standing backlog, but the
        // controller keys on in-batch service latency: with headroom
        // there it keeps growing — bigger batches are what drain the
        // queue — instead of shrinking into congestion collapse.
        let mut ctl = adaptive(1, 64, 10);
        ctl = match ctl {
            BatchController::Adaptive(mut s) => {
                s.limit = 8;
                BatchController::Adaptive(s)
            }
            fixed => fixed,
        };
        let overloaded = vec![sample(500, 1); window_at(8)];
        assert_eq!(
            ctl.observe(&overloaded),
            vec![(16, Duration::from_millis(1), true)],
            "queue-wait slip with cheap batches must still grow"
        );
        // A genuine in-batch blowout shrinks.
        let over_batched = vec![sample(500, 500); window_at(16)];
        let d = ctl.observe(&over_batched);
        assert_eq!(d, vec![(8, Duration::from_millis(500), false)]);
    }
}
