//! The multi-tenant batching server.
//!
//! ```text
//!  submit()──►[tenant queues]──►(round-robin leader pick)
//!                  │                    │
//!             backpressure      digest-keyed gather
//!            (QueueFull when    (same ProgramDigest,
//!             depth==capacity)   up to max_batch)
//!                                       │
//!                                 ┌─────▼─────┐
//!                                 │ worker(s) │ prepare plan once,
//!                                 │           │ pin one pooled VM,
//!                                 └─────┬─────┘ run batch back-to-back
//!                                       │
//!                                 Ticket::wait()
//! ```

use crate::error::ServeError;
use crate::request::{Request, Response, Slot, Ticket};
use crate::stats::{ServeReport, ServeStats};
use bh_ir::{Program, ProgramDigest, Reg};
use bh_runtime::Runtime;
use bh_tensor::Tensor;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A submission the server bounced instead of enqueueing; holds the
/// request so the caller can retry or shed it deliberately.
#[derive(Debug)]
pub struct Rejected {
    /// The request, returned unconsumed.
    pub request: Request,
    /// Why it was rejected ([`ServeError::QueueFull`] or
    /// [`ServeError::Shutdown`]).
    pub reason: ServeError,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request rejected: {}", self.reason)
    }
}

impl std::error::Error for Rejected {}

/// A request as it sits in a tenant queue.
struct Queued {
    program: Arc<Program>,
    digest: ProgramDigest,
    bindings: Vec<(Reg, Tensor)>,
    result: Option<Reg>,
    deadline: Option<Instant>,
    submitted: Instant,
    slot: Arc<Slot>,
}

/// Scheduler state behind one mutex: per-tenant FIFOs plus the
/// round-robin service ring. Tenant state is dropped as soon as a
/// tenant's queue drains, so a long-lived server fed ephemeral tenant
/// IDs does not accumulate memory or scan cost.
struct Sched {
    queues: HashMap<String, VecDeque<Queued>>,
    /// Tenants awaiting service, in rotation order. May hold stale names
    /// (tenant drained by a gather) — skipped and discarded on pop.
    ring: VecDeque<String>,
    queued: usize,
}

impl Sched {
    fn enqueue(&mut self, tenant: &str, request: Queued) {
        match self.queues.get_mut(tenant) {
            Some(queue) => queue.push_back(request),
            None => {
                self.queues
                    .insert(tenant.to_owned(), VecDeque::from([request]));
                self.ring.push_back(tenant.to_owned());
            }
        }
        self.queued += 1;
    }

    /// Pop the next micro-batch, or `None` when nothing is queued.
    ///
    /// The *leader* comes from the tenant at the front of the service
    /// ring, which rotates — that is the fairness guarantee: a tenant
    /// flooding its own queue cannot delay another tenant's head-of-line
    /// request by more than one batch per other waiting tenant. The rest
    /// of the batch is every queued request (any tenant) whose digest
    /// matches the leader's, up to `max_batch`; pulling a matching
    /// request forward never delays anyone else.
    fn next_batch(&mut self, max_batch: usize) -> Option<Vec<Queued>> {
        let (tenant, leader) = loop {
            let name = self.ring.pop_front()?;
            // Stale ring entries (tenant drained by an earlier gather)
            // fall through and are dropped.
            if let Some(queue) = self.queues.get_mut(&name) {
                let leader = queue.pop_front().expect("empty queues are removed");
                break (name, leader);
            }
        };
        self.queued -= 1;
        let mut batch = vec![leader];
        if max_batch > 1 {
            for queue in self.queues.values_mut() {
                while batch.len() < max_batch {
                    let Some(i) = queue.iter().position(|r| r.digest == batch[0].digest) else {
                        break;
                    };
                    batch.push(queue.remove(i).expect("index in range"));
                    self.queued -= 1;
                }
                if batch.len() >= max_batch {
                    break;
                }
            }
        }
        // Drop drained tenants entirely; rotate the leader to the back of
        // the ring if it still has work.
        self.queues.retain(|_, queue| !queue.is_empty());
        if self.queues.contains_key(&tenant) {
            self.ring.push_back(tenant);
        }
        Some(batch)
    }
}

struct Shared {
    runtime: Arc<Runtime>,
    capacity: usize,
    max_batch: usize,
    default_deadline: Option<Duration>,
    sched: Mutex<Sched>,
    work: Condvar,
    stats: Mutex<ServeStats>,
    shutdown: AtomicBool,
}

impl Shared {
    fn process_batch(&self, batch: Vec<Queued>) {
        let started = Instant::now();
        let mut expired = 0u64;
        let mut live = Vec::with_capacity(batch.len());
        for r in batch {
            match r.deadline {
                Some(d) if d < started => {
                    expired += 1;
                    r.slot.complete(Err(ServeError::DeadlineExceeded {
                        missed_by: started - d,
                    }));
                }
                _ => live.push(r),
            }
        }
        if live.is_empty() {
            if expired > 0 {
                self.stats.lock().expired += expired;
            }
            return;
        }

        let batch_size = live.len();
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut latencies: Vec<Duration> = Vec::with_capacity(batch_size);

        // One plan lookup (or one optimiser run) for the whole batch …
        match self.runtime.prepare(&live[0].program) {
            Err(e) => {
                failed = live.len() as u64;
                for r in live {
                    r.slot.complete(Err(ServeError::Eval(e.clone())));
                }
            }
            Ok((plan, first_hit)) => {
                // … and one pinned VM. Same-plan runs back-to-back reuse
                // its base buffers only when that is provably invisible:
                // the plan must never read residue (`rerun_safe`, see
                // DESIGN.md §7) *and* the request must re-bind every
                // declared input — otherwise a request omitting a binding
                // would read the previous request's data. Any other case
                // pays a recycle, never a wrong answer.
                let plan_reusable = bh_ir::analysis::rerun_safe(&plan.program);
                let input_regs: Vec<Reg> = plan
                    .program
                    .bases()
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.is_input)
                    .map(|(i, _)| Reg(i as u32))
                    .collect();
                let mut vm = self.runtime.lease_vm();
                let mut vm_dirty = false;
                let mut cache_hit = first_hit;
                for r in live {
                    let now = Instant::now();
                    if let Some(d) = r.deadline {
                        if d < now {
                            expired += 1;
                            r.slot
                                .complete(Err(ServeError::DeadlineExceeded { missed_by: now - d }));
                            continue;
                        }
                    }
                    let reuse_ok = plan_reusable
                        && input_regs
                            .iter()
                            .all(|reg| r.bindings.iter().any(|(bound, _)| bound == reg));
                    if vm_dirty && !reuse_ok {
                        vm.recycle();
                    }
                    vm_dirty = match self.runtime.eval_prepared(
                        &plan,
                        &mut vm,
                        &r.bindings,
                        r.result,
                        cache_hit,
                    ) {
                        Ok((value, outcome)) => {
                            let done = Instant::now();
                            completed += 1;
                            latencies.push(done - r.submitted);
                            r.slot.complete(Ok(Response {
                                value,
                                outcome,
                                batch_size,
                                queue_wait: started.saturating_duration_since(r.submitted),
                                turnaround: done - r.submitted,
                            }));
                            true
                        }
                        Err(e) => {
                            failed += 1;
                            r.slot.complete(Err(ServeError::Eval(e)));
                            // A failed run may leave partial register
                            // state; start the rest of the batch clean.
                            vm.recycle();
                            false
                        }
                    };
                    cache_hit = true;
                }
            }
        }

        let mut stats = self.stats.lock();
        stats.batches += 1;
        stats.batch_sizes.record(batch_size);
        stats.completed += completed;
        stats.failed += failed;
        stats.expired += expired;
        for l in latencies {
            stats.latency.record(l);
        }
    }

    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut sched = self.sched.lock();
                loop {
                    if let Some(batch) = sched.next_batch(self.max_batch) {
                        break batch;
                    }
                    // Drain before exit: shutdown only stops the loop once
                    // the queues are empty.
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    sched = self.work.wait(sched).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.process_batch(batch);
        }
    }
}

/// Configures and builds a [`Server`].
#[derive(Debug)]
pub struct ServerBuilder {
    runtime: Arc<Runtime>,
    workers: usize,
    queue_capacity: usize,
    max_batch: usize,
    default_deadline: Option<Duration>,
}

impl ServerBuilder {
    /// Worker threads executing batches. `0` is allowed: no threads are
    /// spawned and batches run only when [`Server::service_once`] is
    /// called (deterministic embedding/testing mode).
    pub fn workers(mut self, workers: usize) -> ServerBuilder {
        self.workers = workers;
        self
    }

    /// Total queued requests across all tenants before submissions are
    /// rejected with [`ServeError::QueueFull`] (minimum 1).
    pub fn queue_capacity(mut self, capacity: usize) -> ServerBuilder {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Most requests grouped into one digest-keyed micro-batch
    /// (minimum 1; 1 disables batching).
    pub fn max_batch(mut self, max_batch: usize) -> ServerBuilder {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Deadline applied to requests that do not carry their own.
    pub fn default_deadline(mut self, deadline: Duration) -> ServerBuilder {
        self.default_deadline = Some(deadline);
        self
    }

    /// Build the server and spawn its workers.
    pub fn build(self) -> Server {
        let shared = Arc::new(Shared {
            runtime: self.runtime,
            capacity: self.queue_capacity,
            max_batch: self.max_batch,
            default_deadline: self.default_deadline,
            sched: Mutex::new(Sched {
                queues: HashMap::new(),
                ring: VecDeque::new(),
                queued: 0,
            }),
            work: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bh-serve-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }
}

/// Multi-tenant batching front door over an [`Arc<Runtime>`].
///
/// Concurrent requests whose programs share a structural digest are
/// grouped and executed back-to-back on one pinned, recycled VM, so plan
/// lookup and VM setup amortise across the batch; tenants are served
/// round-robin; a bounded queue rejects (rather than buffers) overload;
/// per-request deadlines fail fast instead of occupying a worker.
///
/// # Examples
///
/// ```
/// use bh_ir::parse_program;
/// use bh_runtime::Runtime;
/// use bh_serve::{ProgramHandle, Request, Server};
///
/// let server = Server::builder(Runtime::builder().build_shared())
///     .workers(2)
///     .queue_capacity(256)
///     .max_batch(8)
///     .build();
///
/// let handle = ProgramHandle::new(parse_program(
///     "BH_IDENTITY a [0:16:1] 0\nBH_ADD a a 3\nBH_SYNC a\n",
/// )?);
/// let reg = handle.program().reg_by_name("a").unwrap();
///
/// let ticket = server
///     .submit(Request::with_handle("tenant-a", &handle).read(reg))
///     .map_err(|r| r.reason)?;
/// let response = ticket.wait()?;
/// assert_eq!(response.value.unwrap().to_f64_vec(), vec![3.0; 16]);
/// server.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start configuring a server over `runtime`.
    pub fn builder(runtime: Arc<Runtime>) -> ServerBuilder {
        ServerBuilder {
            runtime,
            workers: 1,
            queue_capacity: 1024,
            max_batch: 16,
            default_deadline: None,
        }
    }

    /// The runtime requests execute on.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.shared.runtime
    }

    /// Enqueue a request, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// [`Rejected`] with [`ServeError::QueueFull`] when the bounded queue
    /// is at capacity (backpressure — the request is handed back, not
    /// buffered), or [`ServeError::Shutdown`] after shutdown began.
    // Handing the whole Request back by value is the point of the error
    // type (retry without rebuilding); the fat Err is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: Request) -> Result<Ticket, Rejected> {
        let now = Instant::now();
        let deadline = request
            .deadline
            .or(self.shared.default_deadline)
            .map(|d| now + d);
        let slot = Slot::new();
        {
            let mut sched = self.shared.sched.lock();
            // Checked *under the sched lock*: shutdown sets the flag under
            // the same lock, so a submission either sees it (rejected) or
            // its enqueue is visible to the draining workers — an accepted
            // ticket can never be left unresolved.
            if self.shared.shutdown.load(Ordering::Acquire) {
                drop(sched);
                self.shared.stats.lock().rejected += 1;
                return Err(Rejected {
                    request,
                    reason: ServeError::Shutdown,
                });
            }
            if sched.queued >= self.shared.capacity {
                drop(sched);
                self.shared.stats.lock().rejected += 1;
                return Err(Rejected {
                    request,
                    reason: ServeError::QueueFull {
                        capacity: self.shared.capacity,
                    },
                });
            }
            sched.enqueue(
                &request.tenant,
                Queued {
                    program: request.program,
                    digest: request.digest,
                    bindings: request.bindings,
                    result: request.result,
                    deadline,
                    submitted: now,
                    slot: Arc::clone(&slot),
                },
            );
            let depth = sched.queued;
            // Counted before the enqueue becomes visible to workers (the
            // sched lock is still held), so a snapshot can never observe
            // a resolution that outruns its own submission count.
            let mut stats = self.shared.stats.lock();
            stats.submitted += 1;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }
        self.shared.work.notify_one();
        Ok(Ticket { slot })
    }

    /// Submit and block for the outcome (per-call convenience).
    ///
    /// # Errors
    ///
    /// Rejection reasons or the request's resolution error.
    pub fn submit_wait(&self, request: Request) -> Result<Response, ServeError> {
        match self.submit(request) {
            Ok(ticket) => ticket.wait(),
            Err(rejected) => Err(rejected.reason),
        }
    }

    /// Execute at most one pending micro-batch on the calling thread.
    /// Returns false when nothing was queued. This is the entire
    /// scheduling path minus the worker threads — the deterministic mode
    /// for tests and for embedding the server in an external event loop
    /// (build with `.workers(0)`).
    pub fn service_once(&self) -> bool {
        let batch = self.shared.sched.lock().next_batch(self.shared.max_batch);
        match batch {
            Some(batch) => {
                self.shared.process_batch(batch);
                true
            }
            None => false,
        }
    }

    /// Requests queued right now (across all tenants).
    pub fn queue_depth(&self) -> usize {
        self.shared.sched.lock().queued
    }

    /// Tenants with queued work right now. Tenant state is dropped the
    /// moment a tenant's queue drains, so this — not the lifetime number
    /// of distinct tenant IDs — bounds scheduler memory and scan cost.
    pub fn active_tenants(&self) -> usize {
        self.shared.sched.lock().queues.len()
    }

    /// Scheduler-level counters.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.shared.stats.lock().clone();
        stats.queue_depth = self.shared.sched.lock().queued;
        stats
    }

    /// Combined scheduler + runtime snapshot.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            serve: self.stats(),
            runtime: self.shared.runtime.stats(),
        }
    }

    /// Stop accepting submissions, drain every queued request, and join
    /// the workers. Queued work is *completed*, not dropped; only
    /// subsequent submissions are rejected (with
    /// [`ServeError::Shutdown`]). Idempotent; also runs on drop.
    ///
    /// Must not be called from a worker-executed callback (it joins the
    /// worker threads).
    pub fn shutdown(&self) {
        {
            // Under the sched lock, to serialise against submit(): every
            // request accepted before this point is visible to the drain.
            let _sched = self.shared.sched.lock();
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.work.notify_all();
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        // With zero workers (or if callers raced a submit past the flag),
        // drain the remainder on this thread so every accepted request
        // still resolves exactly once.
        while self.service_once() {}
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.lock().len())
            .field("capacity", &self.shared.capacity)
            .field("max_batch", &self.shared.max_batch)
            .field("queued", &self.queue_depth())
            .finish()
    }
}
