//! Serving statistics: throughput counters, queue depth, batch-size
//! distribution and latency percentiles.
//!
//! [`ServeStats`] is the scheduler-level layer; it composes with the
//! runtime's [`bh_runtime::RuntimeStats`] (optimiser/cache/VM counters)
//! into one [`ServeReport`] snapshot, so a serving process exports a
//! single object covering queue → batcher → runtime.

use bh_runtime::RuntimeStats;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Duration;

// Lifted into `bh-observe` so every layer shares one histogram type with
// one set of percentile semantics; re-exported here for compatibility.
pub use bh_observe::LatencyHistogram;

/// Most recent adaptive batch-limit decisions kept in the timeline;
/// older ones are dropped (and counted) so the snapshot has a fixed
/// footprint however long the server runs.
const TIMELINE_CAP: usize = 256;

/// Distinct tenants tracked exactly in the quota metrics; dequeues for
/// tenants beyond the cap are aggregated as "untracked" so ephemeral
/// tenant IDs cannot grow the snapshot without bound.
const TENANT_METRICS_CAP: usize = 64;

/// Largest batch size tracked exactly; bigger batches land in the last
/// bucket.
const BATCH_BUCKETS: usize = 64;

/// How many batches executed at each size (sizes above
/// [`BatchSizeDist::tracked`] share the overflow bucket).
#[derive(Clone)]
pub struct BatchSizeDist {
    counts: [u64; BATCH_BUCKETS],
    max_seen: usize,
    total_requests: u64,
}

impl Default for BatchSizeDist {
    fn default() -> BatchSizeDist {
        BatchSizeDist {
            counts: [0; BATCH_BUCKETS],
            max_seen: 0,
            total_requests: 0,
        }
    }
}

impl BatchSizeDist {
    /// Record one executed batch of `size` requests.
    pub fn record(&mut self, size: usize) {
        debug_assert!(size >= 1, "batches hold at least their leader");
        self.counts[size.min(BATCH_BUCKETS) - 1] += 1;
        self.max_seen = self.max_seen.max(size);
        self.total_requests += size as u64;
    }

    /// Batches executed at exactly `size` (for `size >=` [`Self::tracked`],
    /// all larger batches combined).
    pub fn batches_of(&self, size: usize) -> u64 {
        if size == 0 {
            return 0;
        }
        self.counts[size.min(BATCH_BUCKETS) - 1]
    }

    /// Largest batch observed.
    pub fn max_seen(&self) -> usize {
        self.max_seen
    }

    /// Largest exactly-tracked size.
    pub fn tracked(&self) -> usize {
        BATCH_BUCKETS
    }

    /// Total batches recorded.
    pub fn batches(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total requests across all recorded batches (exact, even for
    /// batches beyond the tracked bucket range).
    pub fn requests(&self) -> u64 {
        self.total_requests
    }

    /// Mean batch size (zero when empty).
    pub fn mean(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.requests() as f64 / batches as f64
    }
}

impl fmt::Debug for BatchSizeDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchSizeDist")
            .field("batches", &self.batches())
            .field("mean", &self.mean())
            .field("max_seen", &self.max_seen)
            .finish()
    }
}

/// One adaptive batch-limit decision (see DESIGN.md §9 for the control
/// loop that produces these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLimitEvent {
    /// Value of [`ServeStats::batches`] when the decision was made.
    pub batch_seq: u64,
    /// The batch limit after the decision.
    pub limit: usize,
    /// The decision window's observed near-p95 in-batch service
    /// latency that drove it (nearest-rank `floor(0.95·n)`, so one
    /// straggler per window is tolerated).
    pub window_p95: Duration,
    /// True when the limit grew (p95 held the SLO), false when it
    /// shrank (p95 slipped).
    pub grew: bool,
}

/// Bounded timeline of adaptive batch-limit decisions across every
/// scheduling context (worker threads interleave; each worker adapts
/// its own limit, so consecutive events need not be monotonic steps of
/// one value). Empty under the fixed batch policy.
#[derive(Debug, Clone, Default)]
pub struct BatchLimitTimeline {
    events: VecDeque<BatchLimitEvent>,
    grows: u64,
    shrinks: u64,
    dropped: u64,
}

impl BatchLimitTimeline {
    pub(crate) fn record(&mut self, event: BatchLimitEvent) {
        if event.grew {
            self.grows += 1;
        } else {
            self.shrinks += 1;
        }
        if self.events.len() == TIMELINE_CAP {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained decisions, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &BatchLimitEvent> {
        self.events.iter()
    }

    /// Decisions retained right now (at most the timeline capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no decision has been recorded (always, under the fixed
    /// batch policy).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Lifetime count of grow decisions.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Lifetime count of shrink decisions.
    pub fn shrinks(&self) -> u64 {
        self.shrinks
    }

    /// Decisions evicted from the bounded timeline.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recently decided limit, if any decision was recorded.
    pub fn last_limit(&self) -> Option<usize> {
        self.events.back().map(|e| e.limit)
    }
}

/// Requests dequeued per tenant (batch-leader picks and digest-gathered
/// followers alike) — the service side of weighted scheduling, for
/// verifying that observed shares track configured weights.
#[derive(Debug, Clone, Default)]
pub struct TenantQuotas {
    served: BTreeMap<String, u64>,
    untracked: u64,
}

impl TenantQuotas {
    pub(crate) fn note(&mut self, tenant: &str, n: u64) {
        if let Some(count) = self.served.get_mut(tenant) {
            *count += n;
        } else if self.served.len() < TENANT_METRICS_CAP {
            self.served.insert(tenant.to_owned(), n);
        } else {
            self.untracked += n;
        }
    }

    /// Requests dequeued for `tenant` (0 if untracked or never seen).
    pub fn served(&self, tenant: &str) -> u64 {
        self.served.get(tenant).copied().unwrap_or(0)
    }

    /// Per-tenant counts, in tenant-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.served.iter().map(|(name, &n)| (name.as_str(), n))
    }

    /// Distinct tenants tracked exactly (bounded; see
    /// [`TenantQuotas::untracked`]).
    pub fn tracked(&self) -> usize {
        self.served.len()
    }

    /// Dequeues for tenants beyond the tracking cap, in aggregate.
    pub fn untracked(&self) -> u64 {
        self.untracked
    }

    /// Total requests dequeued across all tenants.
    pub fn total(&self) -> u64 {
        self.served.values().sum::<u64>() + self.untracked
    }

    /// `tenant`'s fraction of all dequeued requests (0.0 when none yet).
    pub fn share(&self, tenant: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.served(tenant) as f64 / total as f64
    }
}

/// Snapshot of everything the scheduler has done so far.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected at submit time (backpressure or shutdown).
    pub rejected: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed during preparation or execution.
    pub failed: u64,
    /// Requests failed fast because their deadline passed while queued.
    pub expired: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Advisory W-code lint warnings ([`bh_ir::Program::lint`]) observed
    /// on first-admission of a digest. Purely diagnostic — a lint never
    /// rejects a request, and repeat traffic on a known digest is never
    /// re-linted.
    pub lint_warnings: u64,
    /// Requests queued right now.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub peak_queue_depth: usize,
    /// Distribution of executed batch sizes.
    pub batch_sizes: BatchSizeDist,
    /// Submission-to-completion latency of successful requests.
    pub latency: LatencyHistogram,
    /// Adaptive batch-limit decision timeline (empty under the fixed
    /// batch policy).
    pub batch_limits: BatchLimitTimeline,
    /// Requests dequeued per tenant, for auditing weighted fairness.
    pub tenants: TenantQuotas,
}

impl ServeStats {
    /// Requests resolved one way or another.
    pub fn resolved(&self) -> u64 {
        self.completed + self.failed + self.expired
    }

    /// Mean executed batch size.
    pub fn mean_batch_size(&self) -> f64 {
        self.batch_sizes.mean()
    }
}

impl bh_observe::Collect for ServeStats {
    /// Exports the scheduler counter families (`bh_serve_*`): queue and
    /// throughput counters, batch-size distribution summary, turnaround
    /// latency quantiles, adaptive batch-limit decisions, and per-tenant
    /// dequeue counts (tenant-labelled). Metric names are part of the
    /// golden-tested exporter contract.
    fn collect_into(&self, set: &mut bh_observe::MetricSet) {
        set.counter(
            "bh_serve_submitted_total",
            "Requests accepted into the queue.",
        )
        .value(self.submitted);
        set.counter(
            "bh_serve_rejected_total",
            "Requests rejected at submit time (backpressure or shutdown).",
        )
        .value(self.rejected);
        set.counter(
            "bh_serve_completed_total",
            "Requests completed successfully.",
        )
        .value(self.completed);
        set.counter(
            "bh_serve_failed_total",
            "Requests failed during preparation or execution.",
        )
        .value(self.failed);
        set.counter(
            "bh_serve_expired_total",
            "Requests failed fast because their deadline passed while queued.",
        )
        .value(self.expired);
        set.counter("bh_serve_batches_total", "Micro-batches executed.")
            .value(self.batches);
        set.counter(
            "bh_serve_lint_warnings_total",
            "Advisory W-code lint warnings observed at first admission of a digest.",
        )
        .value(self.lint_warnings);
        set.gauge("bh_serve_queue_depth", "Requests queued right now.")
            .value(self.queue_depth);
        set.gauge(
            "bh_serve_peak_queue_depth",
            "Deepest the queue has ever been.",
        )
        .value(self.peak_queue_depth);
        set.gauge("bh_serve_batch_size_mean", "Mean executed batch size.")
            .value(self.mean_batch_size());
        set.counter(
            "bh_serve_batch_requests_total",
            "Requests across all executed batches.",
        )
        .value(self.batch_sizes.requests());
        set.counter(
            "bh_serve_latency_samples_total",
            "Completed requests with a recorded turnaround latency.",
        )
        .value(self.latency.count());
        set.counter(
            "bh_serve_latency_nanos_total",
            "Summed submission-to-completion nanoseconds.",
        )
        .value(u64::try_from(self.latency.total_nanos()).unwrap_or(u64::MAX));
        let quantiles = set.gauge(
            "bh_serve_latency_quantile_nanos",
            "Turnaround latency quantile estimates in nanoseconds.",
        );
        for (q, d) in [
            ("0.5", self.latency.p50()),
            ("0.95", self.latency.p95()),
            ("0.99", self.latency.p99()),
            ("1", self.latency.max()),
        ] {
            quantiles.labelled(
                &[("quantile", q)],
                u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            );
        }
        set.counter(
            "bh_serve_batch_limit_grows_total",
            "Adaptive batch-limit grow decisions.",
        )
        .value(self.batch_limits.grows());
        set.counter(
            "bh_serve_batch_limit_shrinks_total",
            "Adaptive batch-limit shrink decisions.",
        )
        .value(self.batch_limits.shrinks());
        if let Some(limit) = self.batch_limits.last_limit() {
            set.gauge(
                "bh_serve_batch_limit",
                "Most recently decided adaptive batch limit.",
            )
            .value(limit);
        }
        let tenants = set.counter(
            "bh_serve_tenant_served_total",
            "Requests dequeued per tenant (bounded tracking).",
        );
        for (tenant, n) in self.tenants.iter() {
            tenants.labelled(&[("tenant", tenant)], n);
        }
        set.counter(
            "bh_serve_tenant_untracked_total",
            "Dequeues for tenants beyond the exact-tracking cap.",
        )
        .value(self.tenants.untracked());
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "submitted={} rejected={} completed={} failed={} expired={} \
             batches={} mean-batch={:.2} depth={}/{} p50={:?} p95={:?} p99={:?}",
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.expired,
            self.batches,
            self.mean_batch_size(),
            self.queue_depth,
            self.peak_queue_depth,
            self.latency.p50(),
            self.latency.p95(),
            self.latency.p99(),
        )?;
        if !self.batch_limits.is_empty() {
            write!(
                f,
                " adapt=+{}/-{} limit={}",
                self.batch_limits.grows(),
                self.batch_limits.shrinks(),
                self.batch_limits
                    .last_limit()
                    .expect("non-empty timeline has a last event"),
            )?;
        }
        Ok(())
    }
}

/// One combined snapshot: the scheduler layer plus the runtime beneath
/// it (cache effectiveness, optimiser work, VM counters).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scheduler-level counters.
    pub serve: ServeStats,
    /// Aggregated runtime counters for the same period.
    pub runtime: RuntimeStats,
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serve: {}\nruntime: {}", self.serve, self.runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // LatencyHistogram's own tests (percentile edge cases, merge
    // consistency) live with the type in `bh-observe`.

    #[test]
    fn reexported_histogram_is_the_observe_type() {
        let mut h: LatencyHistogram = bh_observe::LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn batch_dist_tracks_mean_and_overflow() {
        let mut d = BatchSizeDist::default();
        d.record(1);
        d.record(1);
        d.record(4);
        assert_eq!(d.batches(), 3);
        assert_eq!(d.batches_of(1), 2);
        assert_eq!(d.batches_of(4), 1);
        assert_eq!(d.requests(), 6);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        d.record(10_000);
        assert_eq!(d.max_seen(), 10_000);
        assert_eq!(d.batches_of(d.tracked()), 1);
        // Request totals stay exact even past the tracked bucket range.
        assert_eq!(d.requests(), 10_006);
        assert!((d.mean() - 10_006.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_is_bounded_and_counts_decisions() {
        let mut t = BatchLimitTimeline::default();
        assert!(t.is_empty());
        assert_eq!(t.last_limit(), None);
        for i in 0..(TIMELINE_CAP as u64 + 10) {
            t.record(BatchLimitEvent {
                batch_seq: i,
                limit: 4,
                window_p95: Duration::from_micros(i),
                grew: i % 2 == 0,
            });
        }
        assert_eq!(t.len(), TIMELINE_CAP);
        assert_eq!(t.dropped(), 10);
        assert_eq!(t.grows() + t.shrinks(), TIMELINE_CAP as u64 + 10);
        assert_eq!(t.last_limit(), Some(4));
        // Oldest events were evicted, newest kept.
        assert_eq!(t.events().next().unwrap().batch_seq, 10);
    }

    #[test]
    fn tenant_quotas_track_shares_and_cap_distinct_tenants() {
        let mut q = TenantQuotas::default();
        q.note("a", 6);
        q.note("b", 3);
        q.note("a", 3);
        assert_eq!(q.served("a"), 9);
        assert_eq!(q.served("b"), 3);
        assert_eq!(q.total(), 12);
        assert!((q.share("a") - 0.75).abs() < 1e-12);
        assert_eq!(q.share("never-seen"), 0.0);
        for i in 0..(TENANT_METRICS_CAP + 5) {
            q.note(&format!("ephemeral-{i}"), 1);
        }
        assert_eq!(q.tracked(), TENANT_METRICS_CAP);
        // 2 slots were taken by a/b, so 7 of the ephemerals overflow.
        assert_eq!(q.untracked(), 7);
        assert_eq!(q.total(), 12 + TENANT_METRICS_CAP as u64 + 5);
    }

    #[test]
    fn stats_display_mentions_adaptive_decisions_when_present() {
        let mut s = ServeStats::default();
        assert!(!s.to_string().contains("adapt="));
        s.batch_limits.record(BatchLimitEvent {
            batch_seq: 1,
            limit: 8,
            window_p95: Duration::from_millis(1),
            grew: true,
        });
        let text = s.to_string();
        assert!(text.contains("adapt=+1/-0 limit=8"), "{text}");
    }

    #[test]
    fn stats_display_mentions_the_counters() {
        let s = ServeStats {
            submitted: 10,
            completed: 9,
            expired: 1,
            ..Default::default()
        };
        assert_eq!(s.resolved(), 10);
        let text = s.to_string();
        assert!(text.contains("submitted=10"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }
}
