//! Requests, responses and the completion ticket.

use crate::error::ServeError;
use bh_ir::{Program, ProgramDigest, Reg};
use bh_runtime::EvalOutcome;
use bh_tensor::Tensor;
use parking_lot::Mutex;
use std::fmt;
use std::sync::{Arc, Condvar};
use std::time::Duration;

/// A program paired with its precomputed structural digest.
///
/// Submitting through a handle makes enqueueing O(1): the digest — the
/// batching key — is computed once here instead of once per request.
/// Clients serving repeated traffic should build one handle per logical
/// program and reuse it.
#[derive(Clone)]
pub struct ProgramHandle {
    program: Arc<Program>,
    digest: ProgramDigest,
}

impl ProgramHandle {
    /// Digest and wrap a program.
    pub fn new(program: Program) -> ProgramHandle {
        ProgramHandle::from_arc(Arc::new(program))
    }

    /// Digest an already-shared program.
    pub fn from_arc(program: Arc<Program>) -> ProgramHandle {
        let digest = program.structural_digest();
        ProgramHandle { program, digest }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The structural digest requests made from this handle batch under.
    pub fn digest(&self) -> &ProgramDigest {
        &self.digest
    }
}

impl fmt::Debug for ProgramHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProgramHandle({} instrs, digest {})",
            self.program.instrs().len(),
            self.digest
        )
    }
}

/// One unit of work for the server: which tenant it belongs to, what to
/// run, what to bind, what to read back, and how long it may wait.
pub struct Request {
    pub(crate) tenant: String,
    pub(crate) program: Arc<Program>,
    pub(crate) digest: ProgramDigest,
    pub(crate) bindings: Vec<(Reg, Tensor)>,
    pub(crate) result: Option<Reg>,
    pub(crate) deadline: Option<Duration>,
}

impl Request {
    /// A request for `tenant` running `program` (digested here; prefer
    /// [`Request::with_handle`] on repeated traffic).
    pub fn new(tenant: impl Into<String>, program: Program) -> Request {
        Request::with_handle(tenant, &ProgramHandle::new(program))
    }

    /// A request reusing a [`ProgramHandle`]'s program and digest.
    pub fn with_handle(tenant: impl Into<String>, handle: &ProgramHandle) -> Request {
        Request {
            tenant: tenant.into(),
            program: Arc::clone(handle.program()),
            digest: handle.digest().clone(),
            bindings: Vec::new(),
            result: None,
            deadline: None,
        }
    }

    /// Bind an input tensor to a register (O(1): copy-on-write share).
    #[must_use]
    pub fn bind(mut self, reg: Reg, tensor: Tensor) -> Request {
        self.bindings.push((reg, tensor));
        self
    }

    /// Read this register back as [`Response::value`] after execution.
    #[must_use]
    pub fn read(mut self, reg: Reg) -> Request {
        self.result = Some(reg);
        self
    }

    /// Fail fast with [`ServeError::DeadlineExceeded`] if execution has
    /// not *started* within `deadline` of submission (overrides the
    /// server's default deadline).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// The tenant this request is scheduled under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The digest this request batches under.
    pub fn digest(&self) -> &ProgramDigest {
        &self.digest
    }
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Request")
            .field("tenant", &self.tenant)
            .field("digest", &self.digest.to_string())
            .field("bindings", &self.bindings.len())
            .field("result", &self.result)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// What a completed request resolves to.
#[derive(Debug, Clone)]
pub struct Response {
    /// The tensor read back, when the request asked for one.
    pub value: Option<Tensor>,
    /// Plan, per-run counters and cache-hit flag from the runtime.
    pub outcome: EvalOutcome,
    /// How many requests shared this request's batch (including it).
    pub batch_size: usize,
    /// Time spent queued before its batch started executing.
    pub queue_wait: Duration,
    /// Total time from submission to completion.
    pub turnaround: Duration,
}

/// One-shot completion slot shared between a [`Ticket`] and the worker
/// that resolves it. Every submitted request resolves exactly once.
pub(crate) struct Slot {
    state: Mutex<Option<Result<Response, ServeError>>>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Resolve the request. Panics if it was already resolved — the
    /// scheduler owns each queued request exclusively, so a double
    /// completion is a scheduler bug, not a recoverable condition.
    pub(crate) fn complete(&self, result: Result<Response, ServeError>) {
        let mut state = self.state.lock();
        assert!(state.is_none(), "request completed twice");
        *state = Some(result);
        self.cv.notify_all();
    }
}

/// Handle returned by a successful submission; redeem it with
/// [`Ticket::wait`] for the request's outcome.
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
}

impl Ticket {
    /// Block until the request resolves (completion, deadline expiry or
    /// evaluation failure).
    ///
    /// # Errors
    ///
    /// The [`ServeError`] the scheduler resolved the request with.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut state = self.slot.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            // The vendored parking_lot guard *is* a std guard, so the std
            // condvar pairs with it; recover rather than propagate poison.
            state = self.slot.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// True once the request has resolved ([`Ticket::wait`] won't block).
    pub fn is_done(&self) -> bool {
        self.slot.state.lock().is_some()
    }
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ticket(done: {})", self.is_done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    #[test]
    fn handle_precomputes_the_digest() {
        let p = parse_program("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n").unwrap();
        let h = ProgramHandle::new(p.clone());
        assert_eq!(h.digest(), &p.structural_digest());
        let r = Request::with_handle("acme", &h);
        assert_eq!(r.digest(), h.digest());
        assert_eq!(r.tenant(), "acme");
    }

    #[test]
    fn ticket_resolves_once() {
        let slot = Slot::new();
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        assert!(!ticket.is_done());
        slot.complete(Err(ServeError::Shutdown));
        assert!(ticket.is_done());
        assert!(matches!(ticket.wait(), Err(ServeError::Shutdown)));
    }

    #[test]
    fn wait_blocks_until_completed_from_another_thread() {
        let slot = Slot::new();
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(10));
        slot.complete(Err(ServeError::Shutdown));
        assert!(matches!(t.join().unwrap(), Err(ServeError::Shutdown)));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_is_a_bug() {
        let slot = Slot::new();
        slot.complete(Err(ServeError::Shutdown));
        slot.complete(Err(ServeError::Shutdown));
    }
}
