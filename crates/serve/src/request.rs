//! Requests, responses and the completion ticket.

use crate::error::ServeError;
use bh_ir::{Program, ProgramDigest, Reg};
use bh_runtime::EvalOutcome;
use bh_tensor::Tensor;
use parking_lot::Mutex;
use std::fmt;
use std::sync::{Arc, Condvar};
use std::time::Duration;

/// A program paired with its precomputed structural digest.
///
/// Submitting through a handle makes enqueueing O(1): the digest — the
/// batching key — is computed once here instead of once per request.
/// Clients serving repeated traffic should build one handle per logical
/// program and reuse it.
#[derive(Clone)]
pub struct ProgramHandle {
    program: Arc<Program>,
    digest: ProgramDigest,
}

impl ProgramHandle {
    /// Digest and wrap a program.
    pub fn new(program: Program) -> ProgramHandle {
        ProgramHandle::from_arc(Arc::new(program))
    }

    /// Digest an already-shared program.
    pub fn from_arc(program: Arc<Program>) -> ProgramHandle {
        let digest = program.structural_digest();
        ProgramHandle { program, digest }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The structural digest requests made from this handle batch under.
    pub fn digest(&self) -> &ProgramDigest {
        &self.digest
    }
}

impl fmt::Debug for ProgramHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProgramHandle({} instrs, digest {})",
            self.program.instrs().len(),
            self.digest
        )
    }
}

/// One unit of work for the server: which tenant it belongs to, what to
/// run, what to bind, what to read back, and how long it may wait.
pub struct Request {
    pub(crate) tenant: String,
    pub(crate) program: Arc<Program>,
    pub(crate) digest: ProgramDigest,
    pub(crate) bindings: Vec<(Reg, Tensor)>,
    pub(crate) result: Option<Reg>,
    pub(crate) deadline: Option<Duration>,
}

impl Request {
    /// A request for `tenant` running `program` (digested here; prefer
    /// [`Request::with_handle`] on repeated traffic).
    pub fn new(tenant: impl Into<String>, program: Program) -> Request {
        Request::with_handle(tenant, &ProgramHandle::new(program))
    }

    /// A request reusing a [`ProgramHandle`]'s program and digest.
    pub fn with_handle(tenant: impl Into<String>, handle: &ProgramHandle) -> Request {
        Request {
            tenant: tenant.into(),
            program: Arc::clone(handle.program()),
            digest: handle.digest().clone(),
            bindings: Vec::new(),
            result: None,
            deadline: None,
        }
    }

    /// Bind an input tensor to a register (O(1): copy-on-write share).
    #[must_use]
    pub fn bind(mut self, reg: Reg, tensor: Tensor) -> Request {
        self.bindings.push((reg, tensor));
        self
    }

    /// Read this register back as [`Response::value`] after execution.
    #[must_use]
    pub fn read(mut self, reg: Reg) -> Request {
        self.result = Some(reg);
        self
    }

    /// Fail fast with [`ServeError::DeadlineExceeded`] if execution has
    /// not *started* within `deadline` of submission (overrides the
    /// server's default deadline).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// The tenant this request is scheduled under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The digest this request batches under.
    pub fn digest(&self) -> &ProgramDigest {
        &self.digest
    }
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Request")
            .field("tenant", &self.tenant)
            .field("digest", &self.digest.to_string())
            .field("bindings", &self.bindings.len())
            .field("result", &self.result)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// What a completed request resolves to.
#[derive(Debug, Clone)]
pub struct Response {
    /// The tensor read back, when the request asked for one.
    pub value: Option<Tensor>,
    /// Plan, per-run counters and cache-hit flag from the runtime.
    pub outcome: EvalOutcome,
    /// How many requests shared this request's batch (including it).
    pub batch_size: usize,
    /// Time spent queued before its batch started executing.
    pub queue_wait: Duration,
    /// Total time from submission to completion.
    pub turnaround: Duration,
}

/// Callback registered with [`Ticket::on_done`], invoked with the
/// request's resolution.
type DoneCallback = Box<dyn FnOnce(Result<Response, ServeError>) + Send>;

/// Lifecycle of a completion slot: the worker moves `Pending → Ready`
/// exactly once; redeeming the result (`wait`, `try_wait`,
/// `wait_timeout`) or delivering it to an [`Ticket::on_done`] callback
/// moves `Ready → Taken`.
enum SlotState {
    Pending,
    Ready(Result<Response, ServeError>),
    Taken,
}

struct SlotInner {
    state: SlotState,
    callback: Option<DoneCallback>,
}

/// One-shot completion slot shared between a [`Ticket`] and the worker
/// that resolves it. Every submitted request resolves exactly once.
pub(crate) struct Slot {
    inner: Mutex<SlotInner>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot {
            inner: Mutex::new(SlotInner {
                state: SlotState::Pending,
                callback: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Resolve the request. Panics if it was already resolved — the
    /// scheduler owns each queued request exclusively, so a double
    /// completion is a scheduler bug, not a recoverable condition.
    pub(crate) fn complete(&self, result: Result<Response, ServeError>) {
        let callback = {
            let mut inner = self.inner.lock();
            assert!(
                matches!(inner.state, SlotState::Pending),
                "request completed twice"
            );
            match inner.callback.take() {
                // A callback consumes the result directly; nothing is
                // stored and no waiter can exist (registering the
                // callback consumed the ticket).
                Some(cb) => {
                    inner.state = SlotState::Taken;
                    Some(cb)
                }
                None => {
                    inner.state = SlotState::Ready(result);
                    self.cv.notify_all();
                    return;
                }
            }
        };
        // Invoked outside the slot lock: the callback is free to submit
        // follow-up requests or inspect other tickets.
        if let Some(cb) = callback {
            cb(result);
        }
    }

    /// Take the result if it is ready. Panics if it was already taken.
    fn take_ready(inner: &mut SlotInner) -> Option<Result<Response, ServeError>> {
        match std::mem::replace(&mut inner.state, SlotState::Taken) {
            SlotState::Ready(result) => Some(result),
            SlotState::Pending => {
                inner.state = SlotState::Pending;
                None
            }
            SlotState::Taken => panic!("ticket result already taken"),
        }
    }
}

/// Handle returned by a successful submission; redeem it with
/// [`Ticket::wait`] (blocking), poll it with [`Ticket::try_wait`] /
/// [`Ticket::wait_timeout`] (non-blocking multiplexing), or hand it a
/// completion callback with [`Ticket::on_done`].
///
/// A ticket may be dropped without being redeemed; the request still
/// executes and any registered callback still fires.
///
/// # Examples
///
/// Polling thousands of in-flight requests without one thread each:
///
/// ```
/// use bh_ir::parse_program;
/// use bh_runtime::Runtime;
/// use bh_serve::{ProgramHandle, Request, Server};
///
/// let server = Server::builder(Runtime::builder().build_shared())
///     .workers(0) // drive explicitly below
///     .build();
/// let handle = ProgramHandle::new(parse_program(
///     "BH_IDENTITY a [0:8:1] 0\nBH_ADD a a 2\nBH_SYNC a\n",
/// )?);
/// let reg = handle.program().reg_by_name("a").unwrap();
///
/// let mut tickets: Vec<_> = (0..4)
///     .map(|_| server.submit(Request::with_handle("t", &handle).read(reg)))
///     .collect::<Result<_, _>>()?;
/// // Nothing has run yet: polling is non-blocking and returns None.
/// assert!(tickets.iter_mut().all(|t| t.try_wait().is_none()));
///
/// while server.service_once() {}
/// for mut t in tickets {
///     let response = t.try_wait().expect("serviced")?;
///     assert_eq!(response.value.unwrap().to_f64_vec(), vec![2.0; 8]);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
}

impl Ticket {
    /// Block until the request resolves (completion, deadline expiry or
    /// evaluation failure).
    ///
    /// # Errors
    ///
    /// The [`ServeError`] the scheduler resolved the request with.
    ///
    /// # Panics
    ///
    /// If the result was already taken by an earlier
    /// [`Ticket::try_wait`] / [`Ticket::wait_timeout`] that returned
    /// `Some`.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut inner = self.slot.inner.lock();
        loop {
            if let Some(result) = Slot::take_ready(&mut inner) {
                return result;
            }
            // The vendored parking_lot guard *is* a std guard, so the std
            // condvar pairs with it; recover rather than propagate poison.
            inner = self.slot.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking poll: `None` while the request is still queued or
    /// executing, `Some(result)` once it has resolved. The result is
    /// *taken* — it is yielded exactly once, after which the ticket is
    /// spent.
    ///
    /// # Panics
    ///
    /// If the result was already taken by an earlier call that returned
    /// `Some`.
    pub fn try_wait(&mut self) -> Option<Result<Response, ServeError>> {
        Slot::take_ready(&mut self.slot.inner.lock())
    }

    /// Block for at most `timeout`: `None` on timeout (the ticket stays
    /// redeemable), `Some(result)` once the request resolves within it.
    ///
    /// # Panics
    ///
    /// If the result was already taken by an earlier [`Ticket::try_wait`]
    /// / `wait_timeout` call that returned `Some`.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<Response, ServeError>> {
        // A timeout too large to represent as a deadline (e.g.
        // `Duration::MAX` as "effectively forever") degrades to an
        // untimed wait instead of overflowing.
        let deadline = std::time::Instant::now().checked_add(timeout);
        let mut inner = self.slot.inner.lock();
        loop {
            if let Some(result) = Slot::take_ready(&mut inner) {
                return Some(result);
            }
            inner = match deadline {
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        return None;
                    }
                    self.slot
                        .cv
                        .wait_timeout(inner, remaining)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => self.slot.cv.wait(inner).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }

    /// Consume the ticket and deliver the result to `callback` instead:
    /// fire-and-forget completion without a blocked thread per request.
    ///
    /// If the request has already resolved, the callback runs immediately
    /// on the calling thread; otherwise it runs on the worker thread that
    /// resolves the request (or the thread driving
    /// [`crate::Server::service_once`] / `shutdown`). Callbacks should be
    /// short — they run on the serving hot path — and must not call
    /// `Server::shutdown` (which joins that same worker). Submitting
    /// follow-up requests from a callback is fine.
    ///
    /// # Panics
    ///
    /// If the result was already taken by an earlier [`Ticket::try_wait`]
    /// / [`Ticket::wait_timeout`] that returned `Some`.
    pub fn on_done(self, callback: impl FnOnce(Result<Response, ServeError>) + Send + 'static) {
        let result = {
            let mut inner = self.slot.inner.lock();
            match Slot::take_ready(&mut inner) {
                Some(result) => result,
                None => {
                    inner.callback = Some(Box::new(callback));
                    return;
                }
            }
        };
        // Already resolved: deliver on this thread, outside the lock.
        callback(result);
    }

    /// True once the request has resolved ([`Ticket::wait`] won't block).
    pub fn is_done(&self) -> bool {
        !matches!(self.slot.inner.lock().state, SlotState::Pending)
    }
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ticket(done: {})", self.is_done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    #[test]
    fn handle_precomputes_the_digest() {
        let p = parse_program("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n").unwrap();
        let h = ProgramHandle::new(p.clone());
        assert_eq!(h.digest(), &p.structural_digest());
        let r = Request::with_handle("acme", &h);
        assert_eq!(r.digest(), h.digest());
        assert_eq!(r.tenant(), "acme");
    }

    #[test]
    fn ticket_resolves_once() {
        let slot = Slot::new();
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        assert!(!ticket.is_done());
        slot.complete(Err(ServeError::Shutdown));
        assert!(ticket.is_done());
        assert!(matches!(ticket.wait(), Err(ServeError::Shutdown)));
    }

    #[test]
    fn wait_blocks_until_completed_from_another_thread() {
        let slot = Slot::new();
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(10));
        slot.complete(Err(ServeError::Shutdown));
        assert!(matches!(t.join().unwrap(), Err(ServeError::Shutdown)));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_is_a_bug() {
        let slot = Slot::new();
        slot.complete(Err(ServeError::Shutdown));
        slot.complete(Err(ServeError::Shutdown));
    }
}
