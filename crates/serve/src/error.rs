//! Serving-layer errors.

use bh_ir::VerifyError;
use bh_vm::VmError;
use std::fmt;
use std::time::Duration;

/// Why a request was rejected, expired or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submission queue was at capacity (backpressure): the request
    /// was rejected *at submit time* and never enqueued. Retry later or
    /// shed load upstream.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The submitted program failed byte-code verification at admission:
    /// it was rejected *at submit time* and never enqueued. Each finding
    /// carries a stable [`bh_ir::VerifyCode`] clients can switch on;
    /// resubmitting the same program will fail the same way.
    Malformed(Vec<VerifyError>),
    /// The request's deadline passed before execution started; it was
    /// failed fast without occupying a worker.
    DeadlineExceeded {
        /// How far past the deadline the scheduler observed it.
        missed_by: Duration,
    },
    /// The server is shutting down (or has shut down) and no longer
    /// accepts submissions.
    Shutdown,
    /// Preparation or execution of the request's program failed.
    Eval(VmError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::Malformed(errors) => {
                write!(
                    f,
                    "program rejected at admission with {} verification error(s)",
                    errors.len()
                )?;
                if let Some(first) = errors.first() {
                    write!(f, ": {first}")?;
                }
                Ok(())
            }
            ServeError::DeadlineExceeded { missed_by } => {
                write!(f, "deadline exceeded by {missed_by:?}")
            }
            ServeError::Shutdown => write!(f, "server is shut down"),
            ServeError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for ServeError {
    fn from(e: VmError) -> ServeError {
        ServeError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let e = ServeError::DeadlineExceeded {
            missed_by: Duration::from_millis(5),
        };
        assert!(e.to_string().contains("deadline"));
        let e: ServeError = VmError::Register {
            reason: "r0".into(),
        }
        .into();
        assert!(e.to_string().contains("evaluation failed"));
        let e = ServeError::Malformed(vec![VerifyError {
            code: bh_ir::VerifyCode::UseAfterFree,
            instr: 1,
            detail: "register `a` used after BH_FREE".into(),
        }]);
        let s = e.to_string();
        assert!(s.contains("admission"), "{s}");
        assert!(s.contains("V201"), "{s}");
    }
}
