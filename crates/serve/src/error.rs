//! Serving-layer errors.

use bh_ir::VerifyError;
use bh_vm::VmError;
use std::fmt;
use std::time::Duration;

/// Why a request was rejected, expired or failed.
///
/// `#[non_exhaustive]`: serving policies grow (rate limits, quotas, …),
/// so downstream matches must keep a wildcard arm. Wire protocols
/// should dispatch on [`ServeError::code`] rather than `Display` text.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The submission queue was at capacity (backpressure): the request
    /// was rejected *at submit time* and never enqueued. Retry later or
    /// shed load upstream.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The submitted program failed byte-code verification at admission:
    /// it was rejected *at submit time* and never enqueued. Each finding
    /// carries a stable [`bh_ir::VerifyCode`] clients can switch on;
    /// resubmitting the same program will fail the same way.
    Malformed(Vec<VerifyError>),
    /// The request's deadline passed before execution started; it was
    /// failed fast without occupying a worker.
    DeadlineExceeded {
        /// How far past the deadline the scheduler observed it.
        missed_by: Duration,
    },
    /// The server is shutting down (or has shut down) and no longer
    /// accepts submissions.
    Shutdown,
    /// Preparation or execution of the request's program failed.
    Eval(VmError),
}

impl ServeError {
    /// The stable machine code for this rejection class.
    ///
    /// These strings are wire-protocol surface (`bh-net` sends them in
    /// error frames) and never change once shipped:
    /// `"queue_full"`, `"malformed"`, `"deadline_exceeded"`,
    /// `"shutdown"`, `"eval_failed"`.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::Malformed(_) => "malformed",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Shutdown => "shutdown",
            ServeError::Eval(_) => "eval_failed",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::Malformed(errors) => {
                write!(
                    f,
                    "program rejected at admission with {} verification error(s)",
                    errors.len()
                )?;
                if let Some(first) = errors.first() {
                    write!(f, ": {first}")?;
                }
                Ok(())
            }
            ServeError::DeadlineExceeded { missed_by } => {
                write!(f, "deadline exceeded by {missed_by:?}")
            }
            ServeError::Shutdown => write!(f, "server is shut down"),
            ServeError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Eval(e) => Some(e),
            // The first finding stands in for the batch; the full list
            // stays reachable through the variant itself.
            ServeError::Malformed(errors) => errors
                .first()
                .map(|e| e as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

impl From<VmError> for ServeError {
    fn from(e: VmError) -> ServeError {
        ServeError::Eval(e)
    }
}

impl From<Vec<VerifyError>> for ServeError {
    fn from(errors: Vec<VerifyError>) -> ServeError {
        ServeError::Malformed(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let e = ServeError::DeadlineExceeded {
            missed_by: Duration::from_millis(5),
        };
        assert!(e.to_string().contains("deadline"));
        let e: ServeError = VmError::Register {
            reason: "r0".into(),
        }
        .into();
        assert!(e.to_string().contains("evaluation failed"));
        let e = ServeError::Malformed(vec![VerifyError::new(
            bh_ir::VerifyCode::UseAfterFree,
            1,
            "register `a` used after BH_FREE",
        )]);
        let s = e.to_string();
        assert!(s.contains("admission"), "{s}");
        assert!(s.contains("V201"), "{s}");
    }

    #[test]
    fn codes_are_stable_and_unique() {
        use std::error::Error;
        let finding = VerifyError::new(bh_ir::VerifyCode::UseAfterFree, 1, "used after BH_FREE");
        let samples = [
            ServeError::QueueFull { capacity: 8 },
            ServeError::Malformed(vec![finding.clone()]),
            ServeError::DeadlineExceeded {
                missed_by: Duration::from_millis(5),
            },
            ServeError::Shutdown,
            ServeError::Eval(VmError::Register {
                reason: "r0".into(),
            }),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &samples {
            assert!(seen.insert(e.code()), "duplicate {}", e.code());
        }
        // Malformed chains to its first finding, whose own stable code
        // survives the downcast — no string matching required.
        let source = samples[1].source().expect("malformed has a source");
        let v = source.downcast_ref::<VerifyError>().expect("VerifyError");
        assert_eq!(v.code(), "V201");
        // `submit()?`-style composition: Vec<VerifyError> converts.
        let e: ServeError = vec![finding].into();
        assert_eq!(e.code(), "malformed");
    }
}
