//! # bh-serve — adaptive multi-tenant batching scheduler for concurrent eval traffic
//!
//! The paper's premise is that algebraically transformed byte-code is
//! cheap to *re-execute* once rewritten; the runtime's transformation
//! cache realises that per process. This crate realises it per *request
//! stream*: a [`Server`] sits on top of a shared
//! [`bh_runtime::Runtime`] and turns the stack into a traffic-serving
//! system. The scheduling and control-loop invariants are specified in
//! DESIGN.md §8 (queueing, batching, exactly-once resolution) and §9
//! (adaptive batch sizing, weighted fairness).
//!
//! * **Bounded submission queue with backpressure** — overload is
//!   rejected at submit time ([`ServeError::QueueFull`]), never buffered
//!   without limit.
//! * **Digest-keyed micro-batching** — concurrent requests whose
//!   programs share a [`bh_ir::ProgramDigest`] are grouped and executed
//!   back-to-back on one pinned, recycled VM, so the plan lookup (or the
//!   whole optimiser run, on a cache miss) and the VM's buffer setup
//!   amortise across the batch. The transformed program is a shared,
//!   reusable artifact; the batcher is what makes N concurrent callers
//!   actually share it.
//! * **Load-aware batch sizing** — [`ServerBuilder::adaptive_batch`]
//!   replaces the hand-tuned batch limit with an AIMD control loop:
//!   per worker, the limit grows while the observed in-batch service
//!   latency (the latency the batcher itself adds — the component the
//!   limit controls) holds a high-percentile SLO, and halves when it
//!   slips, with every decision recorded in
//!   [`ServeStats::batch_limits`] (DESIGN.md §9).
//! * **Weighted tenant scheduling** — batch leaders are picked by
//!   smooth weighted round-robin over tenant lanes
//!   ([`ServerBuilder::tenant_weight`]); a flooding tenant cannot starve
//!   the rest, weights split service proportionally under backlog, and
//!   [`ServeStats::tenants`] audits the realised shares.
//! * **Non-blocking front door** — a [`Ticket`] can be blocked on
//!   ([`Ticket::wait`]), polled ([`Ticket::try_wait`],
//!   [`Ticket::wait_timeout`]) or handed a completion callback
//!   ([`Ticket::on_done`]), so one thread can multiplex thousands of
//!   in-flight requests; [`Server::submit_many`] enqueues pre-batched
//!   bursts under one lock acquisition.
//! * **Deadlines** — requests whose deadline passes while queued fail
//!   fast instead of occupying a worker.
//! * **[`ServeStats`]** — throughput counters, queue depth, batch-size
//!   distribution, latency percentiles, batch-limit timeline and tenant
//!   quotas, composing with [`bh_runtime::RuntimeStats`] into one
//!   [`ServeReport`].
//!
//! # Example
//!
//! ```
//! use bh_ir::parse_program;
//! use bh_runtime::Runtime;
//! use bh_serve::{ProgramHandle, Request, Server};
//! use std::time::Duration;
//!
//! let server = Server::builder(Runtime::builder().build_shared())
//!     .workers(2)
//!     .max_batch(64)                             // ceiling, not a hand-tuned guess …
//!     .adaptive_batch(Duration::from_millis(10)) // … the SLO drives the actual limit
//!     .tenant_weight("tenant-0", 2)              // twice tenant-1's share under backlog
//!     .build();
//!
//! // One handle per logical program: the batching digest is computed once.
//! let handle = ProgramHandle::new(parse_program(
//!     "BH_IDENTITY a [0:32:1] 0\nBH_ADD a a 1\nBH_ADD a a 1\nBH_SYNC a\n",
//! )?);
//! let reg = handle.program().reg_by_name("a").unwrap();
//!
//! // Concurrent same-program submissions share one plan and one VM.
//! let tickets = server.submit_many(
//!     (0..8).map(|i| Request::with_handle(format!("tenant-{}", i % 2), &handle).read(reg)),
//! );
//! for t in tickets {
//!     let ticket = t.map_err(|r| r.reason)?;
//!     assert_eq!(ticket.wait()?.value.unwrap().to_f64_vec(), vec![2.0; 32]);
//! }
//! server.shutdown();
//! // After shutdown the counters are exact (drained, workers joined).
//! let stats = server.stats();
//! assert_eq!(stats.completed, 8);
//! assert!(stats.mean_batch_size() >= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod request;
mod server;
mod stats;

pub use error::ServeError;
pub use request::{ProgramHandle, Request, Response, Ticket};
pub use server::{Rejected, Server, ServerBuilder};
pub use stats::{
    BatchLimitEvent, BatchLimitTimeline, BatchSizeDist, LatencyHistogram, ServeReport, ServeStats,
    TenantQuotas,
};
