//! # bh-serve — multi-tenant batching scheduler for concurrent eval traffic
//!
//! The paper's premise is that algebraically transformed byte-code is
//! cheap to *re-execute* once rewritten; the runtime's transformation
//! cache realises that per process. This crate realises it per *request
//! stream*: a [`Server`] sits on top of an [`Arc<bh_runtime::Runtime>`]
//! and turns the stack into a traffic-serving system.
//!
//! * **Bounded submission queue with backpressure** — overload is
//!   rejected at submit time ([`ServeError::QueueFull`]), never buffered
//!   without limit.
//! * **Digest-keyed micro-batching** — concurrent requests whose
//!   programs share a [`bh_ir::ProgramDigest`] are grouped and executed
//!   back-to-back on one pinned, recycled VM, so the plan lookup (or the
//!   whole optimiser run, on a cache miss) and the VM's buffer setup
//!   amortise across the batch. The transformed program is a shared,
//!   reusable artifact; the batcher is what makes N concurrent callers
//!   actually share it.
//! * **Per-tenant fairness** — batch leaders are picked round-robin
//!   across tenant queues, so a flooding tenant cannot starve the rest.
//! * **Deadlines** — requests whose deadline passes while queued fail
//!   fast instead of occupying a worker.
//! * **[`ServeStats`]** — throughput counters, queue depth, batch-size
//!   distribution and latency percentiles, composing with
//!   [`bh_runtime::RuntimeStats`] into one [`ServeReport`].
//!
//! # Example
//!
//! ```
//! use bh_ir::parse_program;
//! use bh_runtime::Runtime;
//! use bh_serve::{ProgramHandle, Request, Server};
//!
//! let server = Server::builder(Runtime::builder().build_shared())
//!     .workers(2)
//!     .max_batch(8)
//!     .build();
//!
//! // One handle per logical program: the batching digest is computed once.
//! let handle = ProgramHandle::new(parse_program(
//!     "BH_IDENTITY a [0:32:1] 0\nBH_ADD a a 1\nBH_ADD a a 1\nBH_SYNC a\n",
//! )?);
//! let reg = handle.program().reg_by_name("a").unwrap();
//!
//! // Concurrent same-program submissions share one plan and one VM.
//! let tickets: Vec<_> = (0..8)
//!     .map(|i| {
//!         let tenant = format!("tenant-{}", i % 2);
//!         server.submit(Request::with_handle(tenant, &handle).read(reg))
//!     })
//!     .collect::<Result<_, _>>()
//!     .map_err(|r| r.reason)?;
//! for t in tickets {
//!     assert_eq!(t.wait()?.value.unwrap().to_f64_vec(), vec![2.0; 32]);
//! }
//! assert!(server.stats().mean_batch_size() >= 1.0);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod request;
mod server;
mod stats;

pub use error::ServeError;
pub use request::{ProgramHandle, Request, Response, Ticket};
pub use server::{Rejected, Server, ServerBuilder};
pub use stats::{BatchSizeDist, LatencyHistogram, ServeReport, ServeStats};
