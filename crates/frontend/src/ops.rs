//! Operator overloads: `+ - * / %` and their assign forms, for array–array
//! and array–scalar combinations, so the paper's Listing 1 (`a += 1`)
//! reads the same in Rust as in Python.

use crate::array::BhArray;
use bh_ir::Opcode;
use bh_tensor::Scalar;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

macro_rules! array_array_op {
    ($($trait:ident::$method:ident => $op:ident;)*) => {$(
        impl $trait<&BhArray> for &BhArray {
            type Output = BhArray;
            fn $method(self, rhs: &BhArray) -> BhArray {
                self.binary_with(Opcode::$op, rhs)
            }
        }
        impl $trait<BhArray> for BhArray {
            type Output = BhArray;
            fn $method(self, rhs: BhArray) -> BhArray {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BhArray> for BhArray {
            type Output = BhArray;
            fn $method(self, rhs: &BhArray) -> BhArray {
                (&self).$method(rhs)
            }
        }
        impl $trait<BhArray> for &BhArray {
            type Output = BhArray;
            fn $method(self, rhs: BhArray) -> BhArray {
                self.$method(&rhs)
            }
        }
    )*};
}

array_array_op! {
    Add::add => Add;
    Sub::sub => Subtract;
    Mul::mul => Multiply;
    Div::div => Divide;
    Rem::rem => Mod;
}

macro_rules! array_scalar_op {
    ($scalar:ty, $($trait:ident::$method:ident => $op:ident;)*) => {$(
        impl $trait<$scalar> for &BhArray {
            type Output = BhArray;
            fn $method(self, rhs: $scalar) -> BhArray {
                self.binary_scalar(Opcode::$op, Scalar::from(rhs))
            }
        }
        impl $trait<$scalar> for BhArray {
            type Output = BhArray;
            fn $method(self, rhs: $scalar) -> BhArray {
                (&self).$method(rhs)
            }
        }
        impl $trait<&BhArray> for $scalar {
            type Output = BhArray;
            fn $method(self, rhs: &BhArray) -> BhArray {
                rhs.binary_scalar_rev(Opcode::$op, Scalar::from(self))
            }
        }
        impl $trait<BhArray> for $scalar {
            type Output = BhArray;
            fn $method(self, rhs: BhArray) -> BhArray {
                self.$method(&rhs)
            }
        }
    )*};
}

array_scalar_op! { f64,
    Add::add => Add;
    Sub::sub => Subtract;
    Mul::mul => Multiply;
    Div::div => Divide;
    Rem::rem => Mod;
}

array_scalar_op! { i64,
    Add::add => Add;
    Sub::sub => Subtract;
    Mul::mul => Multiply;
    Div::div => Divide;
    Rem::rem => Mod;
}

macro_rules! assign_ops {
    ($scalar:ty) => {
        impl AddAssign<$scalar> for BhArray {
            fn add_assign(&mut self, rhs: $scalar) {
                self.binary_scalar_inplace(Opcode::Add, Scalar::from(rhs));
            }
        }
        impl SubAssign<$scalar> for BhArray {
            fn sub_assign(&mut self, rhs: $scalar) {
                self.binary_scalar_inplace(Opcode::Subtract, Scalar::from(rhs));
            }
        }
        impl MulAssign<$scalar> for BhArray {
            fn mul_assign(&mut self, rhs: $scalar) {
                self.binary_scalar_inplace(Opcode::Multiply, Scalar::from(rhs));
            }
        }
        impl DivAssign<$scalar> for BhArray {
            fn div_assign(&mut self, rhs: $scalar) {
                self.binary_scalar_inplace(Opcode::Divide, Scalar::from(rhs));
            }
        }
    };
}

assign_ops!(f64);
assign_ops!(i64);

impl AddAssign<&BhArray> for BhArray {
    fn add_assign(&mut self, rhs: &BhArray) {
        self.binary_inplace(Opcode::Add, rhs);
    }
}

impl SubAssign<&BhArray> for BhArray {
    fn sub_assign(&mut self, rhs: &BhArray) {
        self.binary_inplace(Opcode::Subtract, rhs);
    }
}

impl MulAssign<&BhArray> for BhArray {
    fn mul_assign(&mut self, rhs: &BhArray) {
        self.binary_inplace(Opcode::Multiply, rhs);
    }
}

impl DivAssign<&BhArray> for BhArray {
    fn div_assign(&mut self, rhs: &BhArray) {
        self.binary_inplace(Opcode::Divide, rhs);
    }
}

impl Neg for &BhArray {
    type Output = BhArray;

    /// `-x` as `BH_MULTIPLY x -1` (wrapping negation for unsigned dtypes,
    /// matching the VM's element semantics).
    fn neg(self) -> BhArray {
        self.binary_scalar(Opcode::Multiply, Scalar::I64(-1))
    }
}

impl Neg for BhArray {
    type Output = BhArray;

    fn neg(self) -> BhArray {
        -&self
    }
}
