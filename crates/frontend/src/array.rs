//! The lazy array handle.

use crate::context::{Context, RegGuard};
use bh_ir::{Instruction, Opcode, Operand, Reg, ViewRef};
use bh_tensor::{DType, Scalar, Shape, Tensor};
use bh_vm::VmError;
use std::sync::Arc;

/// A lazy n-dimensional array: operations on it record byte-code in its
/// [`Context`]; nothing executes until [`BhArray::eval`] (or
/// [`Context::flush`]).
///
/// Cloning is cheap (a handle copy); the underlying register is freed
/// (`BH_FREE`) when the last handle drops.
///
/// # Examples
///
/// ```
/// use bh_frontend::Context;
/// use bh_tensor::{DType, Shape};
///
/// let ctx = Context::new();
/// let x = ctx.arange(DType::Float64, 5);
/// let y = (&x * &x) + 1.0; // records byte-code only
/// assert_eq!(y.eval()?.to_f64_vec(), vec![1.0, 2.0, 5.0, 10.0, 17.0]);
/// # Ok::<(), bh_vm::VmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BhArray {
    ctx: Context,
    guard: Arc<RegGuard>,
}

impl BhArray {
    pub(crate) fn from_parts(ctx: Context, guard: Arc<RegGuard>) -> BhArray {
        BhArray { ctx, guard }
    }

    /// The backing byte-code register.
    pub fn reg(&self) -> Reg {
        self.guard.reg
    }

    /// Element dtype.
    pub fn dtype(&self) -> DType {
        self.guard.dtype
    }

    /// Logical shape.
    pub fn shape(&self) -> &Shape {
        &self.guard.shape
    }

    /// The owning context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Synchronise and materialise this array on the host (optimises and
    /// executes the recorded program, serving the optimised plan from the
    /// runtime's transformation cache when the trace has been seen
    /// before).
    ///
    /// # Errors
    ///
    /// Propagates validation/execution failures.
    pub fn eval(&self) -> Result<Tensor, VmError> {
        self.ctx.eval_reg(self.reg())
    }

    /// [`BhArray::eval`], additionally returning the
    /// [`EvalOutcome`](bh_runtime::EvalOutcome) — the optimised plan, its
    /// transformation report, this run's execution counters and whether
    /// the plan came from the cache.
    ///
    /// ```
    /// use bh_frontend::Context;
    /// use bh_tensor::{DType, Shape};
    ///
    /// let ctx = Context::new();
    /// let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
    /// a += 1.0;
    /// a += 1.0;
    /// let (t, outcome) = a.eval_outcome()?;
    /// assert_eq!(t.to_f64_vec(), vec![2.0; 10]);
    /// assert!(outcome.report().total_applications() >= 1);
    /// # Ok::<(), bh_vm::VmError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates validation/execution failures.
    pub fn eval_outcome(&self) -> Result<(Tensor, bh_runtime::EvalOutcome), VmError> {
        self.ctx.eval_reg_outcome(self.reg())
    }

    // ---- recording helpers -------------------------------------------

    fn fresh_like(&self, dtype: DType, shape: Shape) -> BhArray {
        self.ctx.make_array(dtype, shape)
    }

    pub(crate) fn record_binary(&self, op: Opcode, a: Operand, b: Operand, out: &BhArray) {
        self.ctx
            .push(Instruction::binary(op, ViewRef::full(out.reg()), a, b));
    }

    /// `out = self ⊕ other` with automatic dtype promotion (a `BH_IDENTITY`
    /// cast is recorded for the narrower side, as Bohrium's bridge does).
    pub fn binary_with(&self, op: Opcode, other: &BhArray) -> BhArray {
        let out_shape = self
            .shape()
            .broadcast(other.shape())
            .expect("operand shapes must broadcast");
        let promoted = DType::promote(self.dtype(), other.dtype());
        let lhs = self.cast_if_needed(promoted);
        let rhs = other.cast_if_needed(promoted);
        let out_dtype = match op.type_rule() {
            bh_ir::TypeRule::CompareLike => DType::Bool,
            _ => promoted,
        };
        let out = self.fresh_like(out_dtype, out_shape);
        self.record_binary(op, Operand::full(lhs.reg()), Operand::full(rhs.reg()), &out);
        // Keep the cast temporaries alive until after the instruction is
        // recorded (their BH_FREE must come after the use).
        drop((lhs, rhs));
        out
    }

    /// `out = self ⊕ scalar` (scalar cast to this array's dtype).
    pub fn binary_scalar(&self, op: Opcode, scalar: Scalar) -> BhArray {
        let out_dtype = match op.type_rule() {
            bh_ir::TypeRule::CompareLike => DType::Bool,
            _ => self.dtype(),
        };
        let out = self.fresh_like(out_dtype, self.shape().clone());
        self.record_binary(
            op,
            Operand::full(self.reg()),
            Operand::Const(scalar.cast(self.dtype())),
            &out,
        );
        out
    }

    /// `out = scalar ⊕ self` for non-commutative ops.
    pub fn binary_scalar_rev(&self, op: Opcode, scalar: Scalar) -> BhArray {
        let out_dtype = match op.type_rule() {
            bh_ir::TypeRule::CompareLike => DType::Bool,
            _ => self.dtype(),
        };
        let out = self.fresh_like(out_dtype, self.shape().clone());
        self.record_binary(
            op,
            Operand::Const(scalar.cast(self.dtype())),
            Operand::full(self.reg()),
            &out,
        );
        out
    }

    /// In-place `self = self ⊕ scalar` — the `a += 1` of Listing 1.
    pub fn binary_scalar_inplace(&mut self, op: Opcode, scalar: Scalar) {
        let target = ViewRef::full(self.reg());
        self.ctx.push(Instruction::binary(
            op,
            target.clone(),
            Operand::View(target),
            Operand::Const(scalar.cast(self.dtype())),
        ));
    }

    /// In-place `self = self ⊕ other`.
    pub fn binary_inplace(&mut self, op: Opcode, other: &BhArray) {
        let promoted = DType::promote(self.dtype(), other.dtype());
        assert_eq!(
            promoted,
            self.dtype(),
            "in-place update cannot widen {} to {promoted}",
            self.dtype()
        );
        let rhs = other.cast_if_needed(self.dtype());
        let target = ViewRef::full(self.reg());
        self.ctx.push(Instruction::binary(
            op,
            target.clone(),
            Operand::View(target),
            Operand::full(rhs.reg()),
        ));
        drop(rhs);
    }

    fn unary_to(&self, op: Opcode, out_dtype: DType) -> BhArray {
        let out = self.fresh_like(out_dtype, self.shape().clone());
        self.ctx.push(Instruction::unary(
            op,
            ViewRef::full(out.reg()),
            Operand::full(self.reg()),
        ));
        out
    }

    fn cast_if_needed(&self, dtype: DType) -> BhArray {
        if self.dtype() == dtype {
            self.clone()
        } else {
            self.unary_to(Opcode::Identity, dtype)
        }
    }

    /// Copy cast to another dtype (`astype` in NumPy).
    pub fn astype(&self, dtype: DType) -> BhArray {
        self.unary_to(Opcode::Identity, dtype)
    }

    /// An independent copy of this array's current value.
    pub fn copy(&self) -> BhArray {
        self.unary_to(Opcode::Identity, self.dtype())
    }

    // ---- element-wise math -------------------------------------------

    /// `x^n` via `BH_POWER` with an integral exponent — the byte-code the
    /// paper's Eq. 1 transformation targets.
    pub fn powi(&self, n: i64) -> BhArray {
        self.binary_scalar(Opcode::Power, Scalar::I64(n))
    }

    /// `x^p` with a float exponent.
    pub fn powf(&self, p: f64) -> BhArray {
        self.binary_scalar(Opcode::Power, Scalar::F64(p))
    }

    /// Element-wise maximum.
    pub fn maximum(&self, other: &BhArray) -> BhArray {
        self.binary_with(Opcode::Maximum, other)
    }

    /// Element-wise minimum.
    pub fn minimum(&self, other: &BhArray) -> BhArray {
        self.binary_with(Opcode::Minimum, other)
    }

    // ---- comparisons (bool results) ------------------------------------

    /// Element-wise `>`.
    pub fn gt(&self, other: &BhArray) -> BhArray {
        self.binary_with(Opcode::Greater, other)
    }

    /// Element-wise `<`.
    pub fn lt(&self, other: &BhArray) -> BhArray {
        self.binary_with(Opcode::Less, other)
    }

    /// Element-wise `> scalar`.
    pub fn gt_scalar(&self, s: Scalar) -> BhArray {
        self.binary_scalar(Opcode::Greater, s)
    }

    /// Element-wise `< scalar`.
    pub fn lt_scalar(&self, s: Scalar) -> BhArray {
        self.binary_scalar(Opcode::Less, s)
    }

    // ---- reductions -----------------------------------------------------

    fn reduce(&self, op: Opcode, axis: usize) -> BhArray {
        assert!(axis < self.shape().rank(), "reduction axis out of range");
        let out_shape = self.shape().without_axis(axis);
        let out_dtype = self.dtype().reduce_dtype();
        let out = self.fresh_like(out_dtype, out_shape);
        self.ctx.push(Instruction::binary(
            op,
            ViewRef::full(out.reg()),
            Operand::full(self.reg()),
            Operand::Const(Scalar::I64(axis as i64)),
        ));
        out
    }

    fn reduce_all(&self, op: Opcode) -> BhArray {
        let mut acc = self.clone();
        while acc.shape().rank() > 0 {
            acc = acc.reduce(op, 0);
        }
        acc
    }

    /// Sum along `axis` (`BH_ADD_REDUCE`).
    pub fn sum_axis(&self, axis: usize) -> BhArray {
        self.reduce(Opcode::AddReduce, axis)
    }

    /// Sum of all elements (repeated axis-0 reductions, as the bridge
    /// lowers `np.sum`).
    pub fn sum(&self) -> BhArray {
        self.reduce_all(Opcode::AddReduce)
    }

    /// Product along `axis`.
    pub fn prod_axis(&self, axis: usize) -> BhArray {
        self.reduce(Opcode::MultiplyReduce, axis)
    }

    /// Maximum along `axis`.
    pub fn max_axis(&self, axis: usize) -> BhArray {
        self.reduce(Opcode::MaximumReduce, axis)
    }

    /// Minimum along `axis`.
    pub fn min_axis(&self, axis: usize) -> BhArray {
        self.reduce(Opcode::MinimumReduce, axis)
    }

    /// Maximum of all elements.
    pub fn max(&self) -> BhArray {
        self.reduce_all(Opcode::MaximumReduce)
    }

    /// Cumulative sum along `axis` (`BH_ADD_ACCUMULATE`).
    pub fn cumsum_axis(&self, axis: usize) -> BhArray {
        assert!(axis < self.shape().rank(), "scan axis out of range");
        let out = self.fresh_like(self.dtype(), self.shape().clone());
        self.ctx.push(Instruction::binary(
            Opcode::AddAccumulate,
            ViewRef::full(out.reg()),
            Operand::full(self.reg()),
            Operand::Const(Scalar::I64(axis as i64)),
        ));
        out
    }

    // ---- linear algebra -------------------------------------------------

    /// Matrix multiply (`BH_MATMUL`), NumPy `dot` semantics for rank ≤ 2.
    pub fn matmul(&self, other: &BhArray) -> BhArray {
        let out_shape = bh_linalg_result_shape(self.shape(), other.shape());
        let out = self.fresh_like(self.dtype(), out_shape);
        self.record_binary(
            Opcode::MatMul,
            Operand::full(self.reg()),
            Operand::full(other.reg()),
            &out,
        );
        out
    }

    /// Explicit matrix inverse (`BH_INVERSE`) — the *left* path of Eq. 2.
    pub fn inv(&self) -> BhArray {
        self.unary_to(Opcode::Inverse, self.dtype())
    }

    /// Solve `self · x = rhs` (`BH_SOLVE`) — the *right* path of Eq. 2.
    pub fn solve(&self, rhs: &BhArray) -> BhArray {
        let out = self.fresh_like(rhs.dtype(), rhs.shape().clone());
        self.record_binary(
            Opcode::Solve,
            Operand::full(self.reg()),
            Operand::full(rhs.reg()),
            &out,
        );
        out
    }

    /// Matrix transpose (`BH_TRANSPOSE`).
    pub fn transpose(&self) -> BhArray {
        assert_eq!(self.shape().rank(), 2, "transpose needs a matrix");
        let out_shape = Shape::matrix(self.shape().dim(1), self.shape().dim(0));
        self.unary_shaped(Opcode::Transpose, self.dtype(), out_shape)
    }

    fn unary_shaped(&self, op: Opcode, dtype: DType, shape: Shape) -> BhArray {
        let out = self.fresh_like(dtype, shape);
        self.ctx.push(Instruction::unary(
            op,
            ViewRef::full(out.reg()),
            Operand::full(self.reg()),
        ));
        out
    }
}

fn bh_linalg_result_shape(a: &Shape, b: &Shape) -> Shape {
    bh_linalg::matmul_result_shape(a, b).expect("matmul operand shapes must be compatible")
}

macro_rules! float_unary_methods {
    ($($(#[$doc:meta])* $name:ident => $op:ident;)*) => {
        impl BhArray {
            $(
                $(#[$doc])*
                pub fn $name(&self) -> BhArray {
                    self.unary_to(Opcode::$op, self.dtype())
                }
            )*
        }
    };
}

float_unary_methods! {
    /// Element-wise square root (`BH_SQRT`).
    sqrt => Sqrt;
    /// Element-wise natural exponential (`BH_EXP`).
    exp => Exp;
    /// Element-wise natural logarithm (`BH_LOG`).
    ln => Log;
    /// Element-wise base-2 logarithm (`BH_LOG2`).
    log2 => Log2;
    /// Element-wise base-10 logarithm (`BH_LOG10`).
    log10 => Log10;
    /// Element-wise sine (`BH_SIN`).
    sin => Sin;
    /// Element-wise cosine (`BH_COS`).
    cos => Cos;
    /// Element-wise tangent (`BH_TAN`).
    tan => Tan;
    /// Element-wise hyperbolic tangent (`BH_TANH`).
    tanh => Tanh;
    /// Element-wise absolute value (`BH_ABSOLUTE`).
    abs => Absolute;
    /// Element-wise sign (`BH_SIGN`).
    sign => Sign;
    /// Element-wise floor (`BH_FLOOR`).
    floor => Floor;
    /// Element-wise ceiling (`BH_CEIL`).
    ceil => Ceil;
}
