//! # bh-frontend — lazy NumPy-flavoured front-end
//!
//! The "programmer only has to change the import from numpy to bohrium"
//! half of the paper: a NumPy-like array API whose operations record
//! descriptive vector byte-code (`bh-ir`) instead of computing. On
//! evaluation the recorded sequence is algebraically transformed
//! (`bh-opt`) and executed (`bh-vm`) — so unchanged high-productivity code
//! gets the optimised byte-code of Listings 3 and 5 automatically.
//!
//! # Example — the paper's Listing 1
//!
//! ```
//! use bh_frontend::Context;
//! use bh_ir::PrintStyle;
//! use bh_tensor::{DType, Shape};
//!
//! let ctx = Context::new();
//! let mut a = ctx.zeros(DType::Float64, Shape::vector(10)); // np.zeros(10)
//! a += 1.0;
//! a += 1.0;
//! a += 1.0;
//!
//! // The recorded byte-code is exactly the paper's Listing 2:
//! let text = ctx.recorded_text(PrintStyle::LISTING);
//! assert!(text.contains("BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0"));
//!
//! // ... and evaluation optimises it to Listing 3 before running.
//! let t = a.eval()?;
//! assert_eq!(t.to_f64_vec(), vec![3.0; 10]);
//! let report = ctx.last_report().unwrap();
//! assert!(report.total_applications() >= 2); // the two merged adds
//! # Ok::<(), bh_vm::VmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod context;
mod ops;

pub use array::BhArray;
pub use context::Context;

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::PrintStyle;
    use bh_tensor::{DType, Scalar, Shape, Tensor};

    fn f64s(t: &Tensor) -> Vec<f64> {
        t.to_f64_vec()
    }

    #[test]
    fn listing1_records_listing2_and_computes_threes() {
        let ctx = Context::new();
        let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
        a += 1.0;
        a += 1.0;
        a += 1.0;
        let text = ctx.recorded_text(PrintStyle::LISTING);
        let expected = "\
BH_IDENTITY a0 [0:10:1] 0.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
";
        assert_eq!(text, expected);
        assert_eq!(f64s(&a.eval().unwrap()), vec![3.0; 10]);
        // Optimisation merged the adds.
        let stats = ctx.last_stats().unwrap();
        assert!(stats.kernels <= 2, "kernels: {}", stats.kernels);
    }

    #[test]
    fn expression_graph_evaluates() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 4);
        let y = (&x * &x) + (&x * 2.0) + 1.0; // (x+1)^2
        assert_eq!(f64s(&y.eval().unwrap()), vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn powi_expands_and_matches() {
        let ctx = Context::new();
        let x = ctx.full(DType::Float64, Shape::vector(8), Scalar::F64(2.0));
        let y = x.powi(10);
        assert_eq!(f64s(&y.eval().unwrap()), vec![1024.0; 8]);
        // Expansion: no BH_POWER survived in the optimised program.
        let report = ctx.last_report().unwrap();
        let fired: Vec<&str> = report
            .by_rule
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, _)| name.as_str())
            .collect();
        assert!(fired.contains(&"power-expansion"), "{fired:?}");
    }

    #[test]
    fn solve_via_inverse_gets_rewritten() {
        let ctx = Context::new();
        let a = ctx.array(
            Tensor::from_shape_vec(Shape::matrix(2, 2), vec![2.0f64, 1.0, 1.0, 3.0]).unwrap(),
        );
        let b = ctx.array(Tensor::from_vec(vec![3.0f64, 5.0]));
        // The "textbook" formulation: x = A^-1 · B.
        let x = a.inv().matmul(&b);
        let t = x.eval().unwrap();
        assert!((t.to_f64_vec()[0] - 0.8).abs() < 1e-12);
        assert!((t.to_f64_vec()[1] - 1.4).abs() < 1e-12);
        let report = ctx.last_report().unwrap();
        let solved = report
            .by_rule
            .iter()
            .any(|(name, n)| name == "inverse-solve" && *n > 0);
        assert!(solved, "{report}");
    }

    #[test]
    fn mixed_dtypes_promote() {
        let ctx = Context::new();
        let ints = ctx.arange(DType::Int32, 4);
        let floats = ctx.ones(DType::Float64, Shape::vector(4));
        let sum = &ints + &floats;
        assert_eq!(sum.dtype(), DType::Float64);
        assert_eq!(f64s(&sum.eval().unwrap()), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn comparisons_yield_bools() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 5);
        let m = x.gt_scalar(Scalar::F64(2.0));
        assert_eq!(m.dtype(), DType::Bool);
        assert_eq!(f64s(&m.eval().unwrap()), vec![0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn reductions_and_scans() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 6);
        assert_eq!(f64s(&x.sum().eval().unwrap()), vec![15.0]);
        assert_eq!(
            f64s(&x.cumsum_axis(0).eval().unwrap()),
            vec![0.0, 1.0, 3.0, 6.0, 10.0, 15.0]
        );
        assert_eq!(f64s(&x.max().eval().unwrap()), vec![5.0]);
    }

    #[test]
    fn random_is_reproducible() {
        let ctx = Context::new();
        let r1 = ctx.random(DType::Float64, Shape::vector(16), 42);
        let r2 = ctx.random(DType::Float64, Shape::vector(16), 42);
        assert_eq!(f64s(&r1.eval().unwrap()), f64s(&r2.eval().unwrap()));
    }

    #[test]
    fn scalar_on_the_left() {
        let ctx = Context::new();
        let x = ctx.ones(DType::Float64, Shape::vector(3));
        let y = 10.0 - &x;
        assert_eq!(f64s(&y.eval().unwrap()), vec![9.0; 3]);
        let z = 2.0 * &x;
        assert_eq!(f64s(&z.eval().unwrap()), vec![2.0; 3]);
    }

    #[test]
    fn negation() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 3);
        assert_eq!(f64s(&(-&x).eval().unwrap()), vec![0.0, -1.0, -2.0]);
    }

    #[test]
    fn repeated_eval_is_stable() {
        let ctx = Context::new();
        let mut a = ctx.zeros(DType::Float64, Shape::vector(4));
        a += 5.0;
        assert_eq!(f64s(&a.eval().unwrap()), vec![5.0; 4]);
        assert_eq!(f64s(&a.eval().unwrap()), vec![5.0; 4]);
        a += 1.0;
        assert_eq!(f64s(&a.eval().unwrap()), vec![6.0; 4]);
    }

    #[test]
    fn dropped_temporaries_record_frees() {
        let ctx = Context::new();
        let x = ctx.ones(DType::Float64, Shape::vector(4));
        {
            let _tmp = &x + 1.0;
        }
        let text = ctx.recorded_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_FREE"), "{text}");
        // Evaluation still works; the freed temp is dead code.
        assert_eq!(f64s(&x.eval().unwrap()), vec![1.0; 4]);
    }

    #[test]
    fn matmul_and_transpose() {
        let ctx = Context::new();
        let a = ctx.array(
            Tensor::from_shape_vec(Shape::matrix(2, 3), vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0])
                .unwrap(),
        );
        let at = a.transpose();
        let g = a.matmul(&at); // 2x2 Gram matrix
        let t = g.eval().unwrap();
        assert_eq!(t.shape(), &Shape::matrix(2, 2));
        assert_eq!(t.get(&[0, 0]).unwrap().as_f64(), 14.0);
        assert_eq!(t.get(&[1, 1]).unwrap().as_f64(), 77.0);
    }

    #[test]
    fn fused_engine_through_frontend() {
        let ctx = Context::new();
        ctx.set_engine(bh_vm::Engine::Fusing { block: 256 });
        let x = ctx.arange(DType::Float64, 1000);
        let y = ((&x * 2.0) + 3.0).sqrt();
        let t = y.eval().unwrap();
        assert!((t.to_f64_vec()[499] - (2.0f64 * 499.0 + 3.0).sqrt()).abs() < 1e-12);
        let stats = ctx.last_stats().unwrap();
        assert!(stats.fused_groups >= 1);
    }

    #[test]
    fn in_place_array_update() {
        let ctx = Context::new();
        let mut acc = ctx.zeros(DType::Float64, Shape::vector(4));
        let inc = ctx.ones(DType::Float64, Shape::vector(4));
        acc += &inc;
        acc += &inc;
        assert_eq!(f64s(&acc.eval().unwrap()), vec![2.0; 4]);
    }

    #[test]
    fn astype_round_trip() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Int64, 4);
        let f = x.astype(DType::Float32);
        assert_eq!(f.dtype(), DType::Float32);
        assert_eq!(f64s(&f.eval().unwrap()), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn unary_math_methods() {
        let ctx = Context::new();
        let x = ctx.full(DType::Float64, Shape::vector(3), Scalar::F64(4.0));
        assert_eq!(f64s(&x.sqrt().eval().unwrap()), vec![2.0; 3]);
        assert_eq!(f64s(&x.sign().eval().unwrap()), vec![1.0; 3]);
        let y = ctx.full(DType::Float64, Shape::vector(3), Scalar::F64(-1.5));
        assert_eq!(f64s(&y.abs().eval().unwrap()), vec![1.5; 3]);
        assert_eq!(f64s(&y.floor().eval().unwrap()), vec![-2.0; 3]);
    }
}
