//! # bh-frontend — lazy NumPy-flavoured front-end
//!
//! The "programmer only has to change the import from numpy to bohrium"
//! half of the paper: a NumPy-like array API whose operations record
//! descriptive vector byte-code (`bh-ir`) instead of computing. On
//! evaluation the recorded sequence is handed to a [`Runtime`]
//! (`bh-runtime`) that algebraically transforms it (`bh-opt`) — serving
//! already-seen traces from its transformation cache — and executes it
//! (`bh-vm`). Unchanged high-productivity code gets the optimised
//! byte-code of Listings 3 and 5 automatically, and repeated traffic pays
//! for the transformation only once.
//!
//! # Example — the paper's Listing 1
//!
//! ```
//! use bh_frontend::Context;
//! use bh_ir::PrintStyle;
//! use bh_tensor::{DType, Shape};
//!
//! let ctx = Context::new();
//! let mut a = ctx.zeros(DType::Float64, Shape::vector(10)); // np.zeros(10)
//! a += 1.0;
//! a += 1.0;
//! a += 1.0;
//!
//! // The recorded byte-code is exactly the paper's Listing 2:
//! let text = ctx.recorded_text(PrintStyle::LISTING);
//! assert!(text.contains("BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0"));
//!
//! // ... and evaluation optimises it to Listing 3 before running.
//! let (t, outcome) = a.eval_outcome()?;
//! assert_eq!(t.to_f64_vec(), vec![3.0; 10]);
//! assert!(outcome.report().total_applications() >= 2); // the merged adds
//!
//! // Evaluating the same trace again skips the rewrite fixpoint.
//! let (_, again) = a.eval_outcome()?;
//! assert!(again.cache_hit);
//! # Ok::<(), bh_vm::VmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod context;
mod ops;

pub use array::BhArray;
pub use context::Context;
// The runtime types a front-end user configures and inspects.
pub use bh_runtime::{EvalOutcome, EvalPlan, Runtime, RuntimeBuilder, RuntimeStats};

/// One-line import surface for front-end users.
///
/// `use bh_frontend::prelude::*;` brings in everything a typical
/// recording session touches: the [`Context`]/[`BhArray`] pair, the
/// runtime types you configure and inspect ([`Runtime`],
/// [`RuntimeBuilder`], [`EvalOutcome`], [`RuntimeStats`]), the digest
/// type that keys the transformation cache
/// ([`ProgramDigest`](bh_ir::ProgramDigest)), and the tensor
/// vocabulary (`DType`, `Shape`, `Scalar`, `Tensor`).
///
/// ```
/// use bh_frontend::prelude::*;
///
/// let rt = Runtime::builder().build_shared();
/// let ctx = Context::with_runtime(rt.clone());
/// let mut a = ctx.zeros(DType::Float64, Shape::vector(4));
/// a += 2.0;
/// let (t, outcome): (Tensor, EvalOutcome) = a.eval_outcome()?;
/// assert_eq!(t.to_f64_vec(), vec![2.0; 4]);
/// // The structural digest of the optimised plan that executed; the
/// // cache key is the *source* digest, fingerprinted on the outcome.
/// let digest: ProgramDigest = outcome.plan.program.structural_digest();
/// println!("plan {digest} served source {:016x}", outcome.plan.source_fingerprint);
/// assert_eq!(rt.stats().evals, 1);
/// # Ok::<(), bh_vm::VmError>(())
/// ```
pub mod prelude {
    pub use crate::{BhArray, Context};
    pub use bh_ir::ProgramDigest;
    pub use bh_runtime::{EvalOutcome, EvalPlan, Runtime, RuntimeBuilder, RuntimeStats};
    pub use bh_tensor::{DType, Scalar, Shape, Tensor};
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::PrintStyle;
    use bh_tensor::{DType, Scalar, Shape, Tensor};

    fn f64s(t: &Tensor) -> Vec<f64> {
        t.to_f64_vec()
    }

    #[test]
    fn listing1_records_listing2_and_computes_threes() {
        let ctx = Context::new();
        let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
        a += 1.0;
        a += 1.0;
        a += 1.0;
        let text = ctx.recorded_text(PrintStyle::LISTING);
        let expected = "\
BH_IDENTITY a0 [0:10:1] 0.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
";
        assert_eq!(text, expected);
        let (t, outcome) = a.eval_outcome().unwrap();
        assert_eq!(f64s(&t), vec![3.0; 10]);
        // Optimisation merged the adds.
        assert!(
            outcome.exec.kernels <= 2,
            "kernels: {}",
            outcome.exec.kernels
        );
    }

    #[test]
    fn expression_graph_evaluates() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 4);
        let y = (&x * &x) + (&x * 2.0) + 1.0; // (x+1)^2
        assert_eq!(f64s(&y.eval().unwrap()), vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn powi_expands_and_matches() {
        let ctx = Context::new();
        let x = ctx.full(DType::Float64, Shape::vector(8), Scalar::F64(2.0));
        let y = x.powi(10);
        let (t, outcome) = y.eval_outcome().unwrap();
        assert_eq!(f64s(&t), vec![1024.0; 8]);
        // Expansion: no BH_POWER survived in the optimised program.
        let fired: Vec<&str> = outcome
            .report()
            .by_rule
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, _)| name.as_str())
            .collect();
        assert!(fired.contains(&"power-expansion"), "{fired:?}");
    }

    #[test]
    fn solve_via_inverse_gets_rewritten() {
        let ctx = Context::new();
        let a = ctx.array(
            Tensor::from_shape_vec(Shape::matrix(2, 2), vec![2.0f64, 1.0, 1.0, 3.0]).unwrap(),
        );
        let b = ctx.array(Tensor::from_vec(vec![3.0f64, 5.0]));
        // The "textbook" formulation: x = A^-1 · B.
        let x = a.inv().matmul(&b);
        let (t, outcome) = x.eval_outcome().unwrap();
        assert!((t.to_f64_vec()[0] - 0.8).abs() < 1e-12);
        assert!((t.to_f64_vec()[1] - 1.4).abs() < 1e-12);
        let solved = outcome
            .report()
            .by_rule
            .iter()
            .any(|(name, n)| name == "inverse-solve" && *n > 0);
        assert!(solved, "{}", outcome.report());
    }

    #[test]
    fn mixed_dtypes_promote() {
        let ctx = Context::new();
        let ints = ctx.arange(DType::Int32, 4);
        let floats = ctx.ones(DType::Float64, Shape::vector(4));
        let sum = &ints + &floats;
        assert_eq!(sum.dtype(), DType::Float64);
        assert_eq!(f64s(&sum.eval().unwrap()), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn comparisons_yield_bools() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 5);
        let m = x.gt_scalar(Scalar::F64(2.0));
        assert_eq!(m.dtype(), DType::Bool);
        assert_eq!(f64s(&m.eval().unwrap()), vec![0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn reductions_and_scans() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 6);
        assert_eq!(f64s(&x.sum().eval().unwrap()), vec![15.0]);
        assert_eq!(
            f64s(&x.cumsum_axis(0).eval().unwrap()),
            vec![0.0, 1.0, 3.0, 6.0, 10.0, 15.0]
        );
        assert_eq!(f64s(&x.max().eval().unwrap()), vec![5.0]);
    }

    #[test]
    fn random_is_reproducible() {
        let ctx = Context::new();
        let r1 = ctx.random(DType::Float64, Shape::vector(16), 42);
        let r2 = ctx.random(DType::Float64, Shape::vector(16), 42);
        assert_eq!(f64s(&r1.eval().unwrap()), f64s(&r2.eval().unwrap()));
    }

    #[test]
    fn scalar_on_the_left() {
        let ctx = Context::new();
        let x = ctx.ones(DType::Float64, Shape::vector(3));
        let y = 10.0 - &x;
        assert_eq!(f64s(&y.eval().unwrap()), vec![9.0; 3]);
        let z = 2.0 * &x;
        assert_eq!(f64s(&z.eval().unwrap()), vec![2.0; 3]);
    }

    #[test]
    fn negation() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Float64, 3);
        assert_eq!(f64s(&(-&x).eval().unwrap()), vec![0.0, -1.0, -2.0]);
    }

    #[test]
    fn repeated_eval_is_stable() {
        let ctx = Context::new();
        let mut a = ctx.zeros(DType::Float64, Shape::vector(4));
        a += 5.0;
        assert_eq!(f64s(&a.eval().unwrap()), vec![5.0; 4]);
        assert_eq!(f64s(&a.eval().unwrap()), vec![5.0; 4]);
        a += 1.0;
        assert_eq!(f64s(&a.eval().unwrap()), vec![6.0; 4]);
    }

    #[test]
    fn dropped_temporaries_record_frees() {
        let ctx = Context::new();
        let x = ctx.ones(DType::Float64, Shape::vector(4));
        {
            let _tmp = &x + 1.0;
        }
        let text = ctx.recorded_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_FREE"), "{text}");
        // Evaluation still works; the freed temp is dead code.
        assert_eq!(f64s(&x.eval().unwrap()), vec![1.0; 4]);
    }

    #[test]
    fn matmul_and_transpose() {
        let ctx = Context::new();
        let a = ctx.array(
            Tensor::from_shape_vec(Shape::matrix(2, 3), vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0])
                .unwrap(),
        );
        let at = a.transpose();
        let g = a.matmul(&at); // 2x2 Gram matrix
        let t = g.eval().unwrap();
        assert_eq!(t.shape(), &Shape::matrix(2, 2));
        assert_eq!(t.get(&[0, 0]).unwrap().as_f64(), 14.0);
        assert_eq!(t.get(&[1, 1]).unwrap().as_f64(), 77.0);
    }

    #[test]
    fn fused_engine_through_frontend() {
        let rt = Runtime::builder()
            .engine(bh_vm::Engine::Fusing { block: 256 })
            .build_shared();
        let ctx = Context::with_runtime(rt);
        let x = ctx.arange(DType::Float64, 1000);
        let y = ((&x * 2.0) + 3.0).sqrt();
        let (t, outcome) = y.eval_outcome().unwrap();
        assert!((t.to_f64_vec()[499] - (2.0f64 * 499.0 + 3.0).sqrt()).abs() < 1e-12);
        assert!(outcome.exec.fused_groups >= 1);
    }

    #[test]
    fn contexts_sharing_a_runtime_share_cache_and_stats() {
        let rt = Runtime::builder().build_shared();
        let record = |seed: f64| {
            let ctx = Context::with_runtime(rt.clone());
            let mut a = ctx.zeros(DType::Float64, Shape::vector(16));
            a += seed;
            a += seed;
            a
        };
        let a = record(2.0);
        let b = record(2.0);
        let (ta, oa) = a.eval_outcome().unwrap();
        let (tb, ob) = b.eval_outcome().unwrap();
        assert_eq!(f64s(&ta), f64s(&tb));
        // Identical structure from a *different* context: cache hit.
        assert!(!oa.cache_hit);
        assert!(ob.cache_hit);
        // ... and the stats snapshot aggregates both contexts' evals.
        let stats = rt.stats();
        assert_eq!(stats.evals, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // A different constant is a different structure → distinct entry.
        let c = record(3.0);
        let (_, oc) = c.eval_outcome().unwrap();
        assert!(!oc.cache_hit);
    }

    #[test]
    fn repeated_eval_is_a_cache_hit() {
        let ctx = Context::new();
        let mut a = ctx.zeros(DType::Float64, Shape::vector(8));
        a += 1.0;
        let (_, first) = a.eval_outcome().unwrap();
        let (_, second) = a.eval_outcome().unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit, "unchanged recording must re-use its plan");
        // Recording more byte-code invalidates nothing — it's a new key.
        a += 1.0;
        let (t, third) = a.eval_outcome().unwrap();
        assert_eq!(f64s(&t), vec![2.0; 8]);
        assert!(!third.cache_hit);
    }

    #[test]
    fn outcome_api_covers_report_and_exec_counters() {
        // The modern shape of what `set_engine`/`last_report`/`last_stats`
        // used to do: configure the runtime up front, read everything off
        // the returned (or latest) outcome.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = std::sync::Arc::new(AtomicUsize::new(0));
        let seen2 = std::sync::Arc::clone(&seen);
        let rt = Runtime::builder()
            .engine(bh_vm::Engine::Fusing { block: 64 })
            .threads(2)
            .cache_capacity(7)
            .stats_sink(move |_| {
                seen2.fetch_add(1, Ordering::SeqCst);
            })
            .build_shared();
        let ctx = Context::with_runtime(rt);
        let x = ctx.arange(DType::Float64, 512);
        let y = (&x + 1.0) * 2.0;
        let (t, outcome) = y.eval_outcome().unwrap();
        assert_eq!(f64s(&t)[0], 2.0);
        assert!(outcome.report().total_applications() < 100);
        assert!(outcome.exec.fused_groups >= 1, "{}", outcome.exec);
        // `last_outcome` repeats the same information for late readers.
        let last = ctx.last_outcome().unwrap();
        assert_eq!(last.exec, outcome.exec);
        assert!(seen.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn runtime_first_configuration_round_trips() {
        // The graduated configuration surface: everything the old
        // `set_engine`/`set_threads`/`set_options` shims mutated is now
        // fixed at `Runtime::builder()` time and visible via accessors.
        let rt = Runtime::builder()
            .engine(bh_vm::Engine::Fusing { block: 64 })
            .threads(2)
            .cache_capacity(7)
            .stats_sink(|_| {})
            .build_shared();
        let ctx = Context::with_runtime(rt);
        assert_eq!(ctx.runtime().engine(), bh_vm::Engine::Fusing { block: 64 });
        assert_eq!(ctx.runtime().threads(), 2);
        assert_eq!(ctx.runtime().cache_capacity(), 7);
        assert!(ctx.runtime().stats_sink().is_some());
        let x = ctx.arange(DType::Float64, 16);
        assert_eq!(f64s(&(&x + 1.0).eval().unwrap())[0], 1.0);
        // Report and exec counters read off the outcome, not the context.
        let outcome = ctx.last_outcome().expect("an eval happened");
        assert!(outcome.report().total_applications() < 100);
        assert!(outcome.exec.kernels >= 1, "{}", outcome.exec);
    }

    #[test]
    fn flush_executes_everything_recorded() {
        let ctx = Context::new();
        let a = ctx.ones(DType::Float64, Shape::vector(4));
        let b = &a + 1.0;
        let outcome = ctx.flush().unwrap();
        assert!(outcome.exec.kernels >= 1);
        // Live registers were treated as observable, not dead-code.
        assert_eq!(f64s(&b.eval().unwrap()), vec![2.0; 4]);
    }

    #[test]
    fn in_place_array_update() {
        let ctx = Context::new();
        let mut acc = ctx.zeros(DType::Float64, Shape::vector(4));
        let inc = ctx.ones(DType::Float64, Shape::vector(4));
        acc += &inc;
        acc += &inc;
        assert_eq!(f64s(&acc.eval().unwrap()), vec![2.0; 4]);
    }

    #[test]
    fn astype_round_trip() {
        let ctx = Context::new();
        let x = ctx.arange(DType::Int64, 4);
        let f = x.astype(DType::Float32);
        assert_eq!(f.dtype(), DType::Float32);
        assert_eq!(f64s(&f.eval().unwrap()), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn unary_math_methods() {
        let ctx = Context::new();
        let x = ctx.full(DType::Float64, Shape::vector(3), Scalar::F64(4.0));
        assert_eq!(f64s(&x.sqrt().eval().unwrap()), vec![2.0; 3]);
        assert_eq!(f64s(&x.sign().eval().unwrap()), vec![1.0; 3]);
        let y = ctx.full(DType::Float64, Shape::vector(3), Scalar::F64(-1.5));
        assert_eq!(f64s(&y.abs().eval().unwrap()), vec![1.5; 3]);
        assert_eq!(f64s(&y.floor().eval().unwrap()), vec![-2.0; 3]);
    }
}
