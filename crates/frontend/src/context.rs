//! The recording context: the front-end half of the Bohrium bridge.
//!
//! Every array operation appends byte-code to a growing program instead of
//! computing anything. When a result is requested ([`crate::BhArray::eval`]
//! or [`Context::flush`]), the context optimises a snapshot of the program
//! with `bh-opt` and executes it on `bh-vm`, exactly like Bohrium's
//! NumPy bridge intercepting calls and handing byte-code to the runtime.
//!
//! Execution uses *replay* semantics: each flush re-runs the whole recorded
//! program on a fresh VM. All sources of data are deterministic (seeded
//! `BH_RANDOM`, bound host tensors), so replay is semantics-preserving.

use bh_ir::{Instruction, Opcode, PrintStyle, Program, Reg, ViewRef};
use bh_opt::{OptOptions, OptReport, Optimizer};
use bh_tensor::{DType, Scalar, Shape, Tensor};
use bh_vm::{Engine, ExecStats, Vm, VmError};
use parking_lot::Mutex;
use std::sync::{Arc, Weak};

pub(crate) struct Inner {
    pub(crate) program: Program,
    bound: Vec<(String, Tensor)>,
    options: OptOptions,
    engine: Engine,
    threads: usize,
    next_id: usize,
    last_report: Option<OptReport>,
    last_stats: Option<ExecStats>,
}

impl Inner {
    fn fresh_name(&mut self) -> String {
        let name = format!("a{}", self.next_id);
        self.next_id += 1;
        name
    }
}

/// Handle to one array register; records `BH_FREE` when the last user
/// drops it, mirroring Bohrium's discard semantics.
pub(crate) struct RegGuard {
    pub(crate) reg: Reg,
    pub(crate) dtype: DType,
    pub(crate) shape: Shape,
    ctx: Weak<Mutex<Inner>>,
}

impl Drop for RegGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.upgrade() {
            let mut inner = ctx.lock();
            inner
                .program
                .push(Instruction::free(ViewRef::full(self.reg)));
        }
    }
}

impl std::fmt::Debug for RegGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RegGuard({}, {} {})", self.reg, self.dtype, self.shape)
    }
}

/// A lazy-evaluation context: the front-end's stand-in for
/// `import bohrium as np`.
///
/// # Examples
///
/// The paper's Listing 1, in Rust:
///
/// ```
/// use bh_frontend::Context;
/// use bh_tensor::{DType, Shape};
///
/// let ctx = Context::new();
/// let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
/// a += 1.0;
/// a += 1.0;
/// a += 1.0;
/// let t = a.eval()?;
/// assert_eq!(t.to_f64_vec(), vec![3.0; 10]);
/// # Ok::<(), bh_vm::VmError>(())
/// ```
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<Mutex<Inner>>,
}

impl Default for Context {
    fn default() -> Context {
        Context::new()
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "Context({} byte-codes, {} bases)",
            inner.program.instrs().len(),
            inner.program.bases().len()
        )
    }
}

impl Context {
    /// A context with default (O2, fast-math) optimisation and the naive
    /// engine — Bohrium's defaults per the paper's §4.
    pub fn new() -> Context {
        Context::with_options(OptOptions::default())
    }

    /// A context with explicit optimisation options.
    pub fn with_options(options: OptOptions) -> Context {
        Context {
            inner: Arc::new(Mutex::new(Inner {
                program: Program::new(),
                bound: Vec::new(),
                options,
                engine: Engine::Naive,
                threads: 1,
                next_id: 0,
                last_report: None,
                last_stats: None,
            })),
        }
    }

    /// Select the execution engine (naive / fusing).
    pub fn set_engine(&self, engine: Engine) {
        self.inner.lock().engine = engine;
    }

    /// Set the worker-thread count for large element-wise operations.
    pub fn set_threads(&self, threads: usize) {
        self.inner.lock().threads = threads.max(1);
    }

    /// Replace the optimisation options used at flush time.
    pub fn set_options(&self, options: OptOptions) {
        self.inner.lock().options = options;
    }

    pub(crate) fn make_array(&self, dtype: DType, shape: Shape) -> crate::BhArray {
        let mut inner = self.inner.lock();
        let name = inner.fresh_name();
        let reg = inner.program.declare(&name, dtype, shape.clone());
        drop(inner);
        crate::BhArray::from_parts(
            self.clone(),
            Arc::new(RegGuard {
                reg,
                dtype,
                shape,
                ctx: Arc::downgrade(&self.inner),
            }),
        )
    }

    pub(crate) fn push(&self, instr: Instruction) {
        self.inner.lock().program.push(instr);
    }

    /// Record `BH_IDENTITY target <value>`.
    pub(crate) fn fill(&self, reg: Reg, value: Scalar) {
        self.push(Instruction::unary(Opcode::Identity, ViewRef::full(reg), value));
    }

    /// All-zeros array, like `np.zeros`.
    pub fn zeros(&self, dtype: DType, shape: Shape) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.fill(a.reg(), Scalar::zero(dtype));
        a
    }

    /// All-ones array, like `np.ones`.
    pub fn ones(&self, dtype: DType, shape: Shape) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.fill(a.reg(), Scalar::one(dtype));
        a
    }

    /// Constant-filled array, like `np.full`.
    pub fn full(&self, dtype: DType, shape: Shape, value: Scalar) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.fill(a.reg(), value.cast(dtype));
        a
    }

    /// `[0, 1, …, n-1]`, like `np.arange`.
    pub fn arange(&self, dtype: DType, n: usize) -> crate::BhArray {
        let a = self.make_array(dtype, Shape::vector(n));
        self.push(Instruction::range(ViewRef::full(a.reg())));
        a
    }

    /// Seeded uniform-random array (`BH_RANDOM`).
    pub fn random(&self, dtype: DType, shape: Shape, seed: u64) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.push(Instruction::unary(
            Opcode::Random,
            ViewRef::full(a.reg()),
            Scalar::I64(seed as i64),
        ));
        a
    }

    /// Wrap host data as an input array (like feeding an existing NumPy
    /// array to Bohrium).
    pub fn array(&self, tensor: Tensor) -> crate::BhArray {
        let mut inner = self.inner.lock();
        let name = inner.fresh_name();
        let reg = inner
            .program
            .try_declare(&name, tensor.dtype(), tensor.shape().clone(), true)
            .expect("fresh names never collide");
        let dtype = tensor.dtype();
        let shape = tensor.shape().clone();
        inner.bound.push((name, tensor));
        drop(inner);
        crate::BhArray::from_parts(
            self.clone(),
            Arc::new(RegGuard {
                reg,
                dtype,
                shape,
                ctx: Arc::downgrade(&self.inner),
            }),
        )
    }

    /// The byte-code recorded so far, in the paper's textual format.
    pub fn recorded_text(&self, style: PrintStyle) -> String {
        self.inner.lock().program.to_text(style)
    }

    /// Number of byte-codes recorded so far.
    pub fn recorded_len(&self) -> usize {
        self.inner.lock().program.instrs().len()
    }

    /// Optimise a snapshot of the recorded program and execute it,
    /// returning the tensor value of `reg`.
    ///
    /// # Errors
    ///
    /// Propagates validation or execution failures from the VM.
    pub(crate) fn eval_reg(&self, reg: Reg) -> Result<Tensor, VmError> {
        let mut inner = self.inner.lock();
        // Record the sync that makes this register observable.
        inner.program.push(Instruction::sync(ViewRef::full(reg)));
        let mut snapshot = inner.program.clone();
        let optimizer = Optimizer::new(inner.options.clone());
        let report = optimizer.run(&mut snapshot);
        let mut vm = Vm::with_engine(inner.engine);
        vm.set_threads(inner.threads);
        for (name, tensor) in &inner.bound {
            vm.bind_by_name(&snapshot, name, tensor)?;
        }
        vm.run(&snapshot)?;
        let result = vm.read(&snapshot, reg)?;
        inner.last_report = Some(report);
        inner.last_stats = Some(*vm.stats());
        Ok(result)
    }

    /// Force optimisation + execution of everything recorded (without
    /// reading a result).
    ///
    /// # Errors
    ///
    /// Propagates validation or execution failures from the VM.
    pub fn flush(&self) -> Result<(), VmError> {
        let mut inner = self.inner.lock();
        let mut snapshot = inner.program.clone();
        let optimizer = Optimizer::new(inner.options.clone());
        let report = optimizer.run(&mut snapshot);
        let mut vm = Vm::with_engine(inner.engine);
        vm.set_threads(inner.threads);
        for (name, tensor) in &inner.bound {
            vm.bind_by_name(&snapshot, name, tensor)?;
        }
        vm.run(&snapshot)?;
        inner.last_report = Some(report);
        inner.last_stats = Some(*vm.stats());
        Ok(())
    }

    /// The optimisation report of the most recent flush.
    pub fn last_report(&self) -> Option<OptReport> {
        self.inner.lock().last_report.clone()
    }

    /// The execution statistics of the most recent flush.
    pub fn last_stats(&self) -> Option<ExecStats> {
        self.inner.lock().last_stats
    }
}
