//! The recording context: the front-end half of the Bohrium bridge.
//!
//! Every array operation appends byte-code to a growing program instead of
//! computing anything. When a result is requested ([`crate::BhArray::eval`]
//! or [`Context::flush`]), the context snapshots the program and hands it
//! to its [`Runtime`] — the single entry point owning the optimiser, the
//! transformation cache, the VM pool and the aggregated statistics —
//! exactly like Bohrium's NumPy bridge intercepting calls and handing
//! byte-code to the runtime.
//!
//! A context is a *thin handle* over an `Arc<Runtime>`: many contexts (and
//! threads) can share one runtime, so structurally identical traces
//! recorded anywhere hit one shared transformation cache and aggregate
//! into one [`bh_runtime::RuntimeStats`] snapshot.
//!
//! Execution uses *replay* semantics: each flush re-runs the whole recorded
//! program on a recycled VM. All sources of data are deterministic (seeded
//! `BH_RANDOM`, bound host tensors), so replay is semantics-preserving.
//! The `BH_SYNC` that makes an evaluated register observable is appended
//! to the evaluation *snapshot*, not to the recording — so evaluating the
//! same recorded sequence twice produces byte-for-byte identical snapshots
//! and the second evaluation is a cache hit.

use bh_ir::{Instruction, Opcode, PrintStyle, Program, Reg, ViewRef};
use bh_opt::OptOptions;
use bh_runtime::{EvalOutcome, Runtime};
use bh_tensor::{DType, Scalar, Shape, Tensor};
use bh_vm::VmError;
use parking_lot::Mutex;
use std::sync::{Arc, Weak};

pub(crate) struct Inner {
    pub(crate) program: Program,
    runtime: Arc<Runtime>,
    // Arc'd so an evaluation can release the recording lock and hand the
    // bindings to the runtime without deep-copying host tensors.
    bound: Arc<Vec<(Reg, Tensor)>>,
    next_id: usize,
    // (sequence, outcome): concurrent evals through one shared context
    // finish in arbitrary order; the sequence keeps "last" = latest
    // *started* rather than latest *finished*.
    last_outcome: Option<(u64, EvalOutcome)>,
    eval_seq: u64,
}

impl Inner {
    fn next_eval_seq(&mut self) -> u64 {
        self.eval_seq += 1;
        self.eval_seq
    }

    fn store_outcome(&mut self, seq: u64, outcome: EvalOutcome) {
        if self.last_outcome.as_ref().is_none_or(|(s, _)| *s < seq) {
            self.last_outcome = Some((seq, outcome));
        }
    }
}

impl Inner {
    fn fresh_name(&mut self) -> String {
        let name = format!("a{}", self.next_id);
        self.next_id += 1;
        name
    }
}

/// Handle to one array register; records `BH_FREE` when the last user
/// drops it, mirroring Bohrium's discard semantics.
pub(crate) struct RegGuard {
    pub(crate) reg: Reg,
    pub(crate) dtype: DType,
    pub(crate) shape: Shape,
    ctx: Weak<Mutex<Inner>>,
}

impl Drop for RegGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.upgrade() {
            let mut inner = ctx.lock();
            inner
                .program
                .push(Instruction::free(ViewRef::full(self.reg)));
        }
    }
}

impl std::fmt::Debug for RegGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RegGuard({}, {} {})", self.reg, self.dtype, self.shape)
    }
}

/// A lazy-evaluation context: the front-end's stand-in for
/// `import bohrium as np`.
///
/// # Examples
///
/// The paper's Listing 1, in Rust:
///
/// ```
/// use bh_frontend::Context;
/// use bh_tensor::{DType, Shape};
///
/// let ctx = Context::new();
/// let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
/// a += 1.0;
/// a += 1.0;
/// a += 1.0;
/// let t = a.eval()?;
/// assert_eq!(t.to_f64_vec(), vec![3.0; 10]);
/// # Ok::<(), bh_vm::VmError>(())
/// ```
///
/// Sharing one runtime (one cache, one stats aggregate) between contexts:
///
/// ```
/// use bh_frontend::{Context, Runtime};
/// use bh_tensor::{DType, Shape};
///
/// let rt = Runtime::builder().build_shared();
/// let ctx1 = Context::with_runtime(rt.clone());
/// let ctx2 = Context::with_runtime(rt.clone());
/// let mut a = ctx1.zeros(DType::Float64, Shape::vector(4));
/// a += 1.0;
/// let mut b = ctx2.zeros(DType::Float64, Shape::vector(4));
/// b += 1.0;
/// a.eval()?;
/// b.eval()?; // same structure → served from the shared cache
/// assert_eq!(rt.stats().cache_hits, 1);
/// # Ok::<(), bh_vm::VmError>(())
/// ```
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<Mutex<Inner>>,
}

impl Default for Context {
    fn default() -> Context {
        Context::new()
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "Context({} byte-codes, {} bases)",
            inner.program.instrs().len(),
            inner.program.bases().len()
        )
    }
}

impl Context {
    /// A context over its own default runtime (O2, fast-math, naive
    /// engine — Bohrium's defaults per the paper's §4).
    pub fn new() -> Context {
        Context::with_runtime(Runtime::builder().build_shared())
    }

    /// A context sharing an existing runtime. All contexts handed the same
    /// `Arc` share one transformation cache and one stats aggregate.
    pub fn with_runtime(runtime: Arc<Runtime>) -> Context {
        Context {
            inner: Arc::new(Mutex::new(Inner {
                program: Program::new(),
                runtime,
                bound: Arc::new(Vec::new()),
                next_id: 0,
                last_outcome: None,
                eval_seq: 0,
            })),
        }
    }

    /// A context over a dedicated runtime with explicit optimisation
    /// options. Prefer [`Context::with_runtime`] +
    /// [`Runtime::builder`](bh_runtime::Runtime::builder) when you also
    /// want a non-default engine, thread count or cache capacity.
    pub fn with_options(options: OptOptions) -> Context {
        Context::with_runtime(Runtime::builder().options(options).build_shared())
    }

    /// The runtime this context records for.
    pub fn runtime(&self) -> Arc<Runtime> {
        Arc::clone(&self.inner.lock().runtime)
    }

    pub(crate) fn make_array(&self, dtype: DType, shape: Shape) -> crate::BhArray {
        let mut inner = self.inner.lock();
        let name = inner.fresh_name();
        let reg = inner.program.declare(&name, dtype, shape.clone());
        drop(inner);
        crate::BhArray::from_parts(
            self.clone(),
            Arc::new(RegGuard {
                reg,
                dtype,
                shape,
                ctx: Arc::downgrade(&self.inner),
            }),
        )
    }

    pub(crate) fn push(&self, instr: Instruction) {
        self.inner.lock().program.push(instr);
    }

    /// Record `BH_IDENTITY target <value>`.
    pub(crate) fn fill(&self, reg: Reg, value: Scalar) {
        self.push(Instruction::unary(
            Opcode::Identity,
            ViewRef::full(reg),
            value,
        ));
    }

    /// All-zeros array, like `np.zeros`.
    pub fn zeros(&self, dtype: DType, shape: Shape) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.fill(a.reg(), Scalar::zero(dtype));
        a
    }

    /// All-ones array, like `np.ones`.
    pub fn ones(&self, dtype: DType, shape: Shape) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.fill(a.reg(), Scalar::one(dtype));
        a
    }

    /// Constant-filled array, like `np.full`.
    pub fn full(&self, dtype: DType, shape: Shape, value: Scalar) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.fill(a.reg(), value.cast(dtype));
        a
    }

    /// `[0, 1, …, n-1]`, like `np.arange`.
    pub fn arange(&self, dtype: DType, n: usize) -> crate::BhArray {
        let a = self.make_array(dtype, Shape::vector(n));
        self.push(Instruction::range(ViewRef::full(a.reg())));
        a
    }

    /// Seeded uniform-random array (`BH_RANDOM`).
    pub fn random(&self, dtype: DType, shape: Shape, seed: u64) -> crate::BhArray {
        let a = self.make_array(dtype, shape);
        self.push(Instruction::unary(
            Opcode::Random,
            ViewRef::full(a.reg()),
            Scalar::I64(seed as i64),
        ));
        a
    }

    /// Wrap host data as an input array (like feeding an existing NumPy
    /// array to Bohrium).
    pub fn array(&self, tensor: Tensor) -> crate::BhArray {
        let mut inner = self.inner.lock();
        let name = inner.fresh_name();
        let reg = inner
            .program
            .try_declare(&name, tensor.dtype(), tensor.shape().clone(), true)
            .expect("fresh names never collide");
        let dtype = tensor.dtype();
        let shape = tensor.shape().clone();
        Arc::make_mut(&mut inner.bound).push((reg, tensor));
        drop(inner);
        crate::BhArray::from_parts(
            self.clone(),
            Arc::new(RegGuard {
                reg,
                dtype,
                shape,
                ctx: Arc::downgrade(&self.inner),
            }),
        )
    }

    /// The byte-code recorded so far, in the paper's textual format.
    pub fn recorded_text(&self, style: PrintStyle) -> String {
        self.inner.lock().program.to_text(style)
    }

    /// Number of byte-codes recorded so far.
    pub fn recorded_len(&self) -> usize {
        self.inner.lock().program.instrs().len()
    }

    /// Evaluate `reg`: snapshot the recording, append the `BH_SYNC` that
    /// makes the register observable, and hand the snapshot to the
    /// runtime (which serves the optimised plan from its cache when the
    /// structure has been seen before).
    ///
    /// # Errors
    ///
    /// Propagates validation or execution failures from the runtime.
    pub(crate) fn eval_reg_outcome(&self, reg: Reg) -> Result<(Tensor, EvalOutcome), VmError> {
        let mut inner = self.inner.lock();
        let seq = inner.next_eval_seq();
        let mut snapshot = inner.program.clone();
        snapshot.push(Instruction::sync(ViewRef::full(reg)));
        let runtime = Arc::clone(&inner.runtime);
        // Release the recording lock while the runtime works, so sibling
        // contexts on other threads keep recording/evaluating; the Arc
        // clone shares, not copies, the bound host tensors.
        let bound = Arc::clone(&inner.bound);
        drop(inner);
        let (value, outcome) = runtime.eval(&snapshot, &bound, reg)?;
        self.inner.lock().store_outcome(seq, outcome.clone());
        Ok((value, outcome))
    }

    pub(crate) fn eval_reg(&self, reg: Reg) -> Result<Tensor, VmError> {
        self.eval_reg_outcome(reg).map(|(tensor, _)| tensor)
    }

    /// Force optimisation + execution of everything recorded. Registers
    /// not yet freed are treated as observable (transient `BH_SYNC`s are
    /// appended to the snapshot), so their computation is not dead-code
    /// eliminated.
    ///
    /// # Errors
    ///
    /// Propagates validation or execution failures from the runtime.
    pub fn flush(&self) -> Result<EvalOutcome, VmError> {
        let mut inner = self.inner.lock();
        let seq = inner.next_eval_seq();
        let mut snapshot = inner.program.clone();
        let mut freed = vec![false; snapshot.bases().len()];
        for instr in snapshot.instrs() {
            if instr.op == Opcode::Free {
                if let Some(v) = instr.operands.first().and_then(|o| o.as_view()) {
                    freed[v.reg.index()] = true;
                }
            }
        }
        for (index, freed) in freed.iter().enumerate() {
            if !freed {
                snapshot.push(Instruction::sync(ViewRef::full(Reg(index as u32))));
            }
        }
        let runtime = Arc::clone(&inner.runtime);
        let bound = Arc::clone(&inner.bound);
        drop(inner);
        let outcome = runtime.execute(&snapshot, &bound)?;
        self.inner.lock().store_outcome(seq, outcome.clone());
        Ok(outcome)
    }

    /// The [`EvalOutcome`] of the most recent evaluation or flush through
    /// this context (prefer the outcome returned by
    /// [`crate::BhArray::eval_outcome`] directly, and
    /// [`Runtime::stats`](bh_runtime::Runtime::stats) for aggregates).
    pub fn last_outcome(&self) -> Option<EvalOutcome> {
        self.inner
            .lock()
            .last_outcome
            .as_ref()
            .map(|(_, o)| o.clone())
    }
}
