//! Corruption corpus: every malformed input must fail closed with the
//! documented `C1xx` code — no panics, no over-allocation, no partially
//! decoded value. This file is deterministic (no proptest) so the
//! nightly miri job can run it whole.

use bh_container::{Container, ContainerError, PlanSection, FORMAT_VERSION, MAGIC};
use bh_ir::{parse_program, Program};
use bh_observe::Tier;

fn sample() -> Container {
    let program = parse_program(
        ".base x f64[4,4] input\n.base y f64[4,4]\n\
         BH_MULTIPLY y x 2.0\nBH_ADD y y [0:4:1,0:4:1] 1.0\nBH_SYNC y\n",
    )
    .unwrap();
    let digest = program.structural_digest();
    Container::with_plan(
        program.clone(),
        PlanSection {
            program,
            tier: Tier::Tier2,
            options_fingerprint: 0x1234_5678_9abc_def0,
            source_digest: digest.as_bytes().to_vec(),
        },
    )
}

// --- handcrafted-payload helpers -----------------------------------------

fn u64le(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&u64le(s.len() as u64));
    out.extend_from_slice(s.as_bytes());
}

/// A container holding exactly the given section payloads.
fn container_with(sections: &[(u16, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
    for (id, payload) in sections {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&u64le(payload.len() as u64));
    }
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    out
}

fn program_container(payload: &[u8]) -> Vec<u8> {
    container_with(&[(1, payload)])
}

fn expect_code(bytes: &[u8], code: &str) {
    match Container::decode(bytes) {
        Ok(c) => panic!("expected {code}, decoded {c:?}"),
        Err(e) => assert_eq!(e.code(), code, "{e}"),
    }
}

// --- header-level corruption ---------------------------------------------

#[test]
fn empty_and_tiny_inputs_are_bad_magic() {
    expect_code(&[], "C100");
    expect_code(b"BH", "C100");
    expect_code(b"BHP", "C100");
}

#[test]
fn every_corrupted_magic_byte_is_detected() {
    let good = sample().encode();
    for i in 0..4 {
        let mut bad = good.clone();
        bad[i] ^= 0xff;
        expect_code(&bad, "C100");
    }
}

#[test]
fn version_skew_is_rejected_not_misparsed() {
    let good = sample().encode();
    for version in [0u16, FORMAT_VERSION + 1, u16::MAX] {
        let mut bad = good.clone();
        bad[4..6].copy_from_slice(&version.to_le_bytes());
        expect_code(&bad, "C101");
    }
}

#[test]
fn every_truncation_fails_closed() {
    let good = sample().encode();
    for len in 0..good.len() {
        match Container::decode(&good[..len]) {
            Ok(c) => panic!("prefix of {len} bytes decoded: {c:?}"),
            Err(e) => assert!(e.code().starts_with('C'), "{e}"),
        }
    }
}

#[test]
fn every_single_byte_flip_is_panic_free() {
    let good = sample().encode();
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        // A flip may still decode (e.g. inside a register index); it
        // must never panic, and anything it produces must re-encode.
        if let Ok(c) = Container::decode(&bad) {
            let _ = c.encode();
        }
    }
}

// --- section-table corruption --------------------------------------------

#[test]
fn flipped_section_lengths_are_rejected() {
    let good = sample().encode();
    // Section table starts at byte 8; first entry's length field at 10.
    for delta in [1u64, 7, u64::MAX / 2] {
        let mut bad = good.clone();
        let old = u64::from_le_bytes(bad[10..18].try_into().unwrap());
        bad[10..18].copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
        match Container::decode(&bad) {
            Ok(c) => panic!("tampered table decoded: {c:?}"),
            Err(e) => assert!(
                matches!(e.code(), "C102" | "C103" | "C105"),
                "unexpected {e}"
            ),
        }
    }
}

#[test]
fn duplicate_sections_are_rejected() {
    let bytes = container_with(&[(1, &[0u8; 16]), (1, &[0u8; 16])]);
    expect_code(&bytes, "C103");
}

#[test]
fn overflowing_section_lengths_are_rejected() {
    let bytes = container_with(&[(1, &[0u8; 16]), (2, &[0u8; 8])]);
    let mut bad = bytes;
    // Rewrite both length fields to u64::MAX so their sum overflows.
    bad[10..18].copy_from_slice(&u64le(u64::MAX));
    bad[20..28].copy_from_slice(&u64le(u64::MAX));
    expect_code(&bad, "C103");
}

#[test]
fn trailing_bytes_inside_a_section_are_rejected() {
    // A valid empty program (two zero counts) plus one stray byte.
    let mut payload = vec![0u8; 16];
    payload.push(0xaa);
    expect_code(&program_container(&payload), "C103");
}

#[test]
fn missing_program_section_is_rejected() {
    // Plan-only container: syntactically fine table, no program.
    let bytes = container_with(&[(3, &[0u8; 4])]);
    expect_code(&bytes, "C104");
}

#[test]
fn unknown_sections_are_skipped_not_fatal() {
    let empty_program = [0u8; 16];
    let bytes = container_with(&[(1, &empty_program), (99, b"future payload")]);
    let c = Container::decode(&bytes).unwrap();
    assert_eq!(c.program, Program::default());
    assert!(c.plan.is_none());
}

// --- hostile lengths ------------------------------------------------------

#[test]
fn hostile_base_count_rejects_before_allocating() {
    expect_code(&program_container(&u64le(u64::MAX)), "C105");
}

#[test]
fn hostile_instruction_count_rejects_before_allocating() {
    let mut payload = u64le(0).to_vec(); // zero bases
    payload.extend_from_slice(&u64le(u64::MAX)); // absurd instr count
    expect_code(&program_container(&payload), "C105");
}

#[test]
fn hostile_rank_rejects_before_allocating() {
    let mut payload = u64le(1).to_vec();
    push_str(&mut payload, "x");
    push_str(&mut payload, "f64");
    payload.extend_from_slice(&u64le(u64::MAX)); // absurd rank
    expect_code(&program_container(&payload), "C105");
}

#[test]
fn hostile_string_length_rejects_before_allocating() {
    let mut payload = u64le(1).to_vec();
    payload.extend_from_slice(&u64le(u64::MAX >> 1)); // absurd name length
    expect_code(&program_container(&payload), "C105");
}

// --- payload-level corruption ---------------------------------------------

#[test]
fn unknown_dtype_is_c107() {
    let mut payload = u64le(1).to_vec();
    push_str(&mut payload, "x");
    push_str(&mut payload, "q8");
    // Filler so the base-count plausibility guard passes; the dtype
    // error fires before it is ever read.
    payload.extend_from_slice(&[0u8; 16]);
    expect_code(&program_container(&payload), "C107");
}

#[test]
fn invalid_utf8_name_is_c111() {
    let mut payload = u64le(1).to_vec();
    payload.extend_from_slice(&u64le(1));
    payload.push(0xff); // not UTF-8
                        // Filler so the base-count plausibility guard passes.
    payload.extend_from_slice(&[0u8; 24]);
    expect_code(&program_container(&payload), "C111");
}

#[test]
fn duplicate_base_name_is_c110() {
    let mut payload = u64le(2).to_vec();
    for _ in 0..2 {
        push_str(&mut payload, "x");
        push_str(&mut payload, "f64");
        payload.extend_from_slice(&u64le(0)); // rank 0
        payload.push(0); // not input
    }
    payload.extend_from_slice(&u64le(0)); // zero instructions
    expect_code(&program_container(&payload), "C110");
}

#[test]
fn bad_input_flag_is_c108() {
    let mut payload = u64le(1).to_vec();
    push_str(&mut payload, "x");
    push_str(&mut payload, "f64");
    payload.extend_from_slice(&u64le(0));
    payload.push(7); // input flag must be 0 or 1
    expect_code(&program_container(&payload), "C108");
}

#[test]
fn unknown_opcode_is_c106() {
    let mut payload = u64le(0).to_vec();
    payload.extend_from_slice(&u64le(1));
    push_str(&mut payload, "BH_BOGUS");
    payload.extend_from_slice(&u64le(0));
    expect_code(&program_container(&payload), "C106");
}

#[test]
fn bad_operand_tag_is_c108() {
    let mut payload = u64le(0).to_vec();
    payload.extend_from_slice(&u64le(1));
    push_str(&mut payload, "BH_ADD");
    payload.extend_from_slice(&u64le(1)); // one operand
    payload.push(9); // tag must be 0 or 1
                     // Filler so the operand-count plausibility guard passes.
    payload.extend_from_slice(&[0u8; 8]);
    expect_code(&program_container(&payload), "C108");
}

#[test]
fn non_canonical_scalar_is_c109() {
    let mut payload = u64le(0).to_vec();
    payload.extend_from_slice(&u64le(1));
    push_str(&mut payload, "BH_ADD");
    payload.extend_from_slice(&u64le(1));
    payload.push(1); // const operand
    push_str(&mut payload, "bool");
    payload.extend_from_slice(&u64le(7)); // bool must be 0 or 1
    expect_code(&program_container(&payload), "C109");
}

#[test]
fn bad_tier_byte_is_c112() {
    let empty_program = [0u8; 16];
    let plan_payload = [1u8]; // tier byte 1 names no tier
    let bytes = container_with(&[(1, &empty_program), (2, &plan_payload)]);
    expect_code(&bytes, "C112");
}

#[test]
fn codes_survive_the_error_trait() {
    let err = Container::decode(&[]).unwrap_err();
    let as_dyn: &dyn std::error::Error = &err;
    assert!(as_dyn.to_string().starts_with("C100"));
    assert!(matches!(err, ContainerError::BadMagic { .. }));
}
