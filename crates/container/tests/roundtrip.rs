//! Round-trip property tests: encode→decode is the identity on
//! `Container` values, and decode→encode is the identity on encoder
//! output. Generated programs are structurally arbitrary (any opcode,
//! dangling registers, zero-step slices, every dtype) — the container
//! layer must be faithful to whatever the IR can represent, not only to
//! verifiable programs.

use bh_container::{stable_fingerprint, Container, PlanSection};
use bh_ir::{Instruction, Operand, Program, Reg, ViewRef, ALL_OPCODES};
use bh_observe::Tier;
use bh_tensor::{Scalar, Shape, Slice, ALL_DTYPES};
use proptest::prelude::*;

type SliceSpec = (Option<i64>, Option<i64>, i64);
type OperandSpec = (usize, u64, Option<Vec<SliceSpec>>, usize, i64);
type InstrSpec = (usize, Vec<OperandSpec>);
type BaseSpec = (usize, Vec<u64>, usize);

fn arb_slice() -> impl Strategy<Value = SliceSpec> {
    (
        proptest::option::of(-8i64..9),
        proptest::option::of(-8i64..9),
        -3i64..4,
    )
}

/// An operand spec: tag selector, register, optional slices, const
/// dtype index, const value.
fn arb_operand() -> impl Strategy<Value = OperandSpec> {
    (
        0usize..2,
        0u64..8,
        proptest::option::of(proptest::collection::vec(arb_slice(), 0..3)),
        0usize..ALL_DTYPES.len(),
        -4i64..5,
    )
}

fn arb_instr() -> impl Strategy<Value = InstrSpec> {
    (
        0usize..ALL_OPCODES.len(),
        proptest::collection::vec(arb_operand(), 0..4),
    )
}

fn arb_base() -> impl Strategy<Value = BaseSpec> {
    (
        0usize..ALL_DTYPES.len(),
        proptest::collection::vec(1u64..6, 0..3),
        0usize..2,
    )
}

fn build_program(bases: Vec<BaseSpec>, instrs: Vec<InstrSpec>) -> Program {
    let mut p = Program::default();
    for (i, (dtype_idx, dims, input)) in bases.into_iter().enumerate() {
        let dims: Vec<usize> = dims.into_iter().map(|d| d as usize).collect();
        p.try_declare(
            &format!("r{i}"),
            ALL_DTYPES[dtype_idx],
            Shape::from(dims),
            input == 1,
        )
        .expect("generated names are unique");
    }
    for (op_idx, operands) in instrs {
        let operands = operands
            .into_iter()
            .map(|(tag, reg, slices, dtype_idx, value)| match tag {
                0 => {
                    let reg = Reg(reg as u32);
                    Operand::View(match slices {
                        None => ViewRef::full(reg),
                        Some(specs) => ViewRef::sliced(
                            reg,
                            specs
                                .into_iter()
                                .map(|(start, stop, step)| Slice::new(start, stop, step))
                                .collect(),
                        ),
                    })
                }
                _ => Operand::Const(Scalar::from_i64(value, ALL_DTYPES[dtype_idx])),
            })
            .collect();
        p.push(Instruction::new(ALL_OPCODES[op_idx], operands));
    }
    p
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_base(), 0..5),
        proptest::collection::vec(arb_instr(), 0..8),
    )
        .prop_map(|(bases, instrs)| build_program(bases, instrs))
}

/// Rewrite every view so its register names a declared base (declaring
/// one if there are none): `structural_digest` resolves views and
/// panics on dangling registers, so digest-bearing tests need closed
/// programs. The unconstrained round-trip test keeps dangling regs —
/// the container layer itself must not care.
fn close_registers(mut p: Program) -> Program {
    if p.bases().is_empty() {
        p.try_declare("pad", ALL_DTYPES[0], Shape::vector(4), false)
            .unwrap();
    }
    let nbases = p.bases().len() as u32;
    for instr in p.instrs_mut() {
        for operand in &mut instr.operands {
            if let Operand::View(v) = operand {
                v.reg = Reg(v.reg.index() as u32 % nbases);
                // Slices with arbitrary endpoints may be unresolvable,
                // which the digest tolerates (distinct fallback tag) —
                // leave them alone.
            }
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn program_container_round_trips(program in arb_program()) {
        let c = Container::program(program);
        let bytes = c.encode();
        let back = Container::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &c);
        // Bit-identical re-encode: the format is canonical.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn plan_container_round_trips(
        source in arb_program(),
        plan_program in arb_program(),
        tier_sel in 0usize..2,
        fingerprint_seed in 0u64..u64::MAX,
    ) {
        let source = close_registers(source);
        let digest = source.structural_digest();
        let plan = PlanSection {
            program: plan_program,
            tier: if tier_sel == 0 { Tier::Tier0 } else { Tier::Tier2 },
            options_fingerprint: stable_fingerprint(&fingerprint_seed),
            source_digest: digest.as_bytes().to_vec(),
        };
        let c = Container::with_plan(source, plan);
        let bytes = c.encode();
        let back = Container::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &c);
        prop_assert_eq!(back.encode(), bytes);
        prop_assert!(back.plan.as_ref().expect("plan present").digest_matches(&digest));
    }

    #[test]
    fn distinct_programs_encode_distinctly(a in arb_program(), b in arb_program()) {
        let ea = Container::program(a.clone()).encode();
        let eb = Container::program(b.clone()).encode();
        prop_assert_eq!(a == b, ea == eb);
    }
}

/// NaN payloads cannot use `Program` equality (`NaN != NaN`), so pin
/// them through byte identity instead: the scalar travels as its exact
/// bit pattern.
#[test]
fn nan_constants_are_bit_faithful() {
    for bits in [
        f64::NAN.to_bits(),
        0x7ff8_0000_dead_beef,
        (-0.0f64).to_bits(),
    ] {
        let mut p = Program::default();
        p.try_declare("x", bh_tensor::DType::Float64, Shape::vector(4), false)
            .unwrap();
        p.push(Instruction::new(
            bh_ir::Opcode::Identity,
            vec![
                Operand::full(Reg(0)),
                Operand::Const(Scalar::F64(f64::from_bits(bits))),
            ],
        ));
        let bytes = Container::program(p).encode();
        let back = Container::decode(&bytes).unwrap();
        let Some(Operand::Const(Scalar::F64(v))) = back.program.instrs()[0].operands.get(1) else {
            panic!("constant lost");
        };
        assert_eq!(v.to_bits(), bits);
        assert_eq!(back.encode(), bytes);
    }
}
