//! Little-endian encoder/decoder primitives and the program/plan payload
//! codecs.
//!
//! The encoder mirrors the canonical-digest encoder in `bh_ir::digest`
//! (everything length-prefixed, every multi-byte integer little-endian)
//! but, unlike the digest, keeps register *names* and the raw slice
//! spellings: a container must round-trip the program bit-identically,
//! not canonicalise it.
//!
//! The decoder is fail-closed and allocation-bounded: every count field
//! is validated against the number of bytes that could possibly back it
//! *before* any `Vec` is sized from it, so a hostile length can at most
//! make us reject — never over-allocate.

use crate::error::ContainerError;
use bh_ir::{Instruction, Opcode, Operand, Program, Reg, ViewRef};
use bh_observe::Tier;
use bh_tensor::{DType, Scalar, Shape, Slice};
use std::str::FromStr;

/// Operand tag bytes (shared with `bh_ir::digest`'s convention).
const TAG_VIEW: u8 = 0;
const TAG_CONST: u8 = 1;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) struct Enc {
    pub(crate) out: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc { out: Vec::new() }
    }

    pub(crate) fn u8_(&mut self, v: u8) {
        self.out.push(v);
    }

    pub(crate) fn u16_(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32_(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64_(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize_(&mut self, v: usize) {
        self.u64_(v as u64);
    }

    pub(crate) fn str_(&mut self, s: &str) {
        self.usize_(s.len());
        self.out.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn bytes_(&mut self, b: &[u8]) {
        self.usize_(b.len());
        self.out.extend_from_slice(b);
    }

    fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.u8_(0),
            Some(v) => {
                self.u8_(1);
                self.u64_(v as u64);
            }
        }
    }

    fn scalar(&mut self, c: &Scalar) {
        self.str_(c.dtype().short_name());
        self.u64_(scalar_bits(c));
    }

    /// Encode a full program: bases (with names), then instructions with
    /// their raw operand spellings.
    pub(crate) fn program(&mut self, p: &Program) {
        self.usize_(p.bases().len());
        for base in p.bases() {
            self.str_(&base.name);
            self.str_(base.dtype.short_name());
            self.usize_(base.shape.dims().len());
            for &d in base.shape.dims() {
                self.u64_(d as u64);
            }
            self.u8_(base.is_input as u8);
        }
        self.usize_(p.instrs().len());
        for instr in p.instrs() {
            self.str_(instr.op.name());
            self.usize_(instr.operands.len());
            for operand in &instr.operands {
                match operand {
                    Operand::View(v) => {
                        self.u8_(TAG_VIEW);
                        self.u32_(v.reg.index() as u32);
                        match &v.slices {
                            None => self.u8_(0),
                            Some(slices) => {
                                self.u8_(1);
                                self.usize_(slices.len());
                                for s in slices {
                                    self.opt_i64(s.start);
                                    self.opt_i64(s.stop);
                                    self.u64_(s.step as u64);
                                }
                            }
                        }
                    }
                    Operand::Const(c) => {
                        self.u8_(TAG_CONST);
                        self.scalar(c);
                    }
                }
            }
        }
    }
}

fn scalar_bits(c: &Scalar) -> u64 {
    match *c {
        Scalar::Bool(b) => b as u64,
        Scalar::U8(v) => v as u64,
        Scalar::U16(v) => v as u64,
        Scalar::U32(v) => v as u64,
        Scalar::U64(v) => v,
        Scalar::I8(v) => v as i64 as u64,
        Scalar::I16(v) => v as i64 as u64,
        Scalar::I32(v) => v as i64 as u64,
        Scalar::I64(v) => v as u64,
        Scalar::F32(v) => v.to_bits() as u64,
        Scalar::F64(v) => v.to_bits(),
    }
}

/// Rebuild a scalar from its dtype and 64-bit pattern, rejecting
/// non-canonical encodings (so decode∘encode is the identity and two
/// distinct byte strings never decode to equal scalars).
fn scalar_from_bits(dtype: DType, bits: u64) -> Result<Scalar, ContainerError> {
    let bad = || ContainerError::BadScalar { dtype, bits };
    Ok(match dtype {
        DType::Bool => match bits {
            0 => Scalar::Bool(false),
            1 => Scalar::Bool(true),
            _ => return Err(bad()),
        },
        DType::UInt8 => Scalar::U8(u8::try_from(bits).map_err(|_| bad())?),
        DType::UInt16 => Scalar::U16(u16::try_from(bits).map_err(|_| bad())?),
        DType::UInt32 => Scalar::U32(u32::try_from(bits).map_err(|_| bad())?),
        DType::UInt64 => Scalar::U64(bits),
        DType::Int8 => Scalar::I8(i8::try_from(bits as i64).map_err(|_| bad())?),
        DType::Int16 => Scalar::I16(i16::try_from(bits as i64).map_err(|_| bad())?),
        DType::Int32 => Scalar::I32(i32::try_from(bits as i64).map_err(|_| bad())?),
        DType::Int64 => Scalar::I64(bits as i64),
        DType::Float32 => Scalar::F32(f32::from_bits(u32::try_from(bits).map_err(|_| bad())?)),
        DType::Float64 => Scalar::F64(f64::from_bits(bits)),
    })
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn bytes(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<&'a [u8], ContainerError> {
        if n > self.remaining() {
            return Err(ContainerError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8_(&mut self, context: &'static str) -> Result<u8, ContainerError> {
        Ok(self.bytes(1, context)?[0])
    }

    pub(crate) fn u16_(&mut self, context: &'static str) -> Result<u16, ContainerError> {
        let b = self.bytes(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32_(&mut self, context: &'static str) -> Result<u32, ContainerError> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64_(&mut self, context: &'static str) -> Result<u64, ContainerError> {
        let b = self.bytes(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a count of items, each occupying at least `min_item_bytes`
    /// of the remaining input. Rejects before any allocation.
    pub(crate) fn count(
        &mut self,
        context: &'static str,
        min_item_bytes: usize,
    ) -> Result<usize, ContainerError> {
        let n = self.u64_(context)?;
        let cap = (self.remaining() / min_item_bytes.max(1)) as u64;
        if n > cap {
            return Err(ContainerError::HostileLength {
                context,
                requested: n,
                available: cap,
            });
        }
        Ok(n as usize)
    }

    pub(crate) fn str_(&mut self, context: &'static str) -> Result<&'a str, ContainerError> {
        let n = self.count(context, 1)?;
        let raw = self.bytes(n, context)?;
        std::str::from_utf8(raw).map_err(|_| ContainerError::BadUtf8 { context })
    }

    pub(crate) fn vec_(&mut self, context: &'static str) -> Result<Vec<u8>, ContainerError> {
        let n = self.count(context, 1)?;
        Ok(self.bytes(n, context)?.to_vec())
    }

    fn opt_i64(&mut self, context: &'static str) -> Result<Option<i64>, ContainerError> {
        match self.u8_(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64_(context)? as i64)),
            value => Err(ContainerError::BadTag { context, value }),
        }
    }

    fn dtype(&mut self, context: &'static str) -> Result<DType, ContainerError> {
        let name = self.str_(context)?;
        DType::from_str(name).map_err(|_| ContainerError::UnknownDType { name: name.into() })
    }

    fn scalar(&mut self) -> Result<Scalar, ContainerError> {
        let dtype = self.dtype("constant dtype")?;
        let bits = self.u64_("constant bits")?;
        scalar_from_bits(dtype, bits)
    }

    /// Decode a full program. The result is structurally faithful to the
    /// bytes but *unchecked*: callers must route it through
    /// `bh_ir::verify` before execution.
    pub(crate) fn program(&mut self) -> Result<Program, ContainerError> {
        // Smallest possible base: empty name (8) + 1-byte dtype name (9)
        // + rank 0 (8) + input flag (1) = 26 bytes.
        let nbases = self.count("base count", 26)?;
        let mut program = Program::default();
        for _ in 0..nbases {
            let name = self.str_("base name")?;
            let dtype = self.dtype("base dtype")?;
            let rank = self.count("base rank", 8)?;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                let d = self.u64_("base dim")?;
                let d = usize::try_from(d).map_err(|_| ContainerError::HostileLength {
                    context: "base dim",
                    requested: d,
                    available: usize::MAX as u64,
                })?;
                dims.push(d);
            }
            let is_input = match self.u8_("input flag")? {
                0 => false,
                1 => true,
                value => {
                    return Err(ContainerError::BadTag {
                        context: "input flag",
                        value,
                    })
                }
            };
            if program
                .try_declare(name, dtype, Shape::from(dims), is_input)
                .is_none()
            {
                return Err(ContainerError::DuplicateBase { name: name.into() });
            }
        }
        // Smallest possible instruction: 1-byte mnemonic (9) + operand
        // count 0 (8) = 17 bytes.
        let ninstrs = self.count("instruction count", 17)?;
        for _ in 0..ninstrs {
            let mnemonic = self.str_("opcode mnemonic")?;
            let op = Opcode::from_str(mnemonic).map_err(|_| ContainerError::UnknownOpcode {
                name: mnemonic.into(),
            })?;
            // Smallest operand: tag (1) + reg (4) + slices flag (1) = 6.
            let nops = self.count("operand count", 6)?;
            let mut operands = Vec::with_capacity(nops);
            for _ in 0..nops {
                operands.push(self.operand()?);
            }
            program.push(Instruction::new(op, operands));
        }
        Ok(program)
    }

    fn operand(&mut self) -> Result<Operand, ContainerError> {
        match self.u8_("operand tag")? {
            TAG_VIEW => {
                let reg = Reg(self.u32_("register index")?);
                let slices = match self.u8_("slices flag")? {
                    0 => None,
                    1 => {
                        // Smallest slice: two absent endpoints (1+1) +
                        // step (8) = 10 bytes.
                        let n = self.count("slice count", 10)?;
                        let mut slices = Vec::with_capacity(n);
                        for _ in 0..n {
                            let start = self.opt_i64("slice start")?;
                            let stop = self.opt_i64("slice stop")?;
                            let step = self.u64_("slice step")? as i64;
                            slices.push(Slice::new(start, stop, step));
                        }
                        Some(slices)
                    }
                    value => {
                        return Err(ContainerError::BadTag {
                            context: "slices flag",
                            value,
                        })
                    }
                };
                Ok(Operand::View(match slices {
                    None => ViewRef::full(reg),
                    Some(s) => ViewRef::sliced(reg, s),
                }))
            }
            TAG_CONST => Ok(Operand::Const(self.scalar()?)),
            value => Err(ContainerError::BadTag {
                context: "operand tag",
                value,
            }),
        }
    }

    /// Decode a tier byte as written by [`tier_byte`].
    pub(crate) fn tier(&mut self) -> Result<Tier, ContainerError> {
        match self.u8_("tier byte")? {
            0 => Ok(Tier::Tier0),
            2 => Ok(Tier::Tier2),
            value => Err(ContainerError::BadTier { value }),
        }
    }
}

/// The wire byte for a [`Tier`].
pub(crate) fn tier_byte(tier: Tier) -> u8 {
    match tier {
        Tier::Tier0 => 0,
        Tier::Tier2 => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::ALL_DTYPES;

    #[test]
    fn scalar_bits_round_trip_every_dtype() {
        for &dtype in &ALL_DTYPES {
            let c = Scalar::from_f64(1.0, dtype);
            let back = scalar_from_bits(dtype, scalar_bits(&c)).unwrap();
            assert_eq!(c, back, "{dtype}");
        }
    }

    #[test]
    fn non_canonical_scalars_are_rejected() {
        for (dtype, bits) in [
            (DType::Bool, 2),
            (DType::UInt8, 256),
            (DType::UInt16, 1 << 16),
            (DType::UInt32, 1 << 32),
            (DType::Int8, 128),
            (DType::Int16, 1 << 15),
            (DType::Int32, 1 << 31),
            (DType::Float32, 1 << 32),
        ] {
            let err = scalar_from_bits(dtype, bits).unwrap_err();
            assert_eq!(err.code(), "C109", "{dtype} {bits:#x}");
        }
    }

    #[test]
    fn negative_integers_survive_sign_extension() {
        for c in [Scalar::I8(-5), Scalar::I16(-300), Scalar::I32(-70_000)] {
            let back = scalar_from_bits(c.dtype(), scalar_bits(&c)).unwrap();
            assert_eq!(c, back);
        }
    }

    #[test]
    fn hostile_count_rejects_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut dec = Dec::new(&bytes);
        let err = dec.count("base count", 26).unwrap_err();
        assert_eq!(err.code(), "C105");
    }
}
