//! Structured decode errors (`C1xx`).
//!
//! Every way a container can fail to decode has a stable machine code,
//! mirroring the verifier's `V` codes and the auditor's `A` codes: the
//! code string for a variant never changes once shipped, so wire
//! protocols and logs can match on `code()` instead of `Display` text.

use bh_tensor::DType;
use std::fmt;

/// Why a byte string is not a valid container.
///
/// Decoding is fail-closed: the first violation aborts with one of these,
/// and no partially-decoded value escapes. The variant set may grow in
/// future format versions, hence `#[non_exhaustive]`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ContainerError {
    /// C100 — the first four bytes are not [`crate::MAGIC`].
    BadMagic {
        /// What was found instead (zero-padded if the input was shorter).
        found: [u8; 4],
    },
    /// C101 — the format version is newer than this decoder understands.
    UnsupportedVersion {
        /// The version field as read.
        found: u16,
    },
    /// C102 — the input ended before a field it promised.
    Truncated {
        /// Which field was being read.
        context: &'static str,
    },
    /// C103 — the section table is inconsistent: duplicate section ids,
    /// lengths that overflow, or payloads that do not tile the input
    /// exactly.
    SectionTable {
        /// Human-readable specifics.
        detail: String,
    },
    /// C104 — a required section is absent.
    MissingSection {
        /// The section id that was expected.
        id: u16,
    },
    /// C105 — a count or length field exceeds what the remaining input
    /// could possibly hold. Rejected *before* any allocation, so hostile
    /// lengths cannot force over-allocation.
    HostileLength {
        /// Which field carried the length.
        context: &'static str,
        /// The length as read.
        requested: u64,
        /// Upper bound the remaining input admits.
        available: u64,
    },
    /// C106 — an opcode mnemonic no [`bh_ir::Opcode`] answers to.
    UnknownOpcode {
        /// The mnemonic as read.
        name: String,
    },
    /// C107 — a dtype short-name no [`DType`] answers to.
    UnknownDType {
        /// The short-name as read.
        name: String,
    },
    /// C108 — a tag byte outside its variant range.
    BadTag {
        /// Which tagged field.
        context: &'static str,
        /// The tag as read.
        value: u8,
    },
    /// C109 — a scalar bit pattern that is not canonical for its dtype
    /// (e.g. a `bool` encoded as 7, or `u8` bits above 255).
    BadScalar {
        /// The scalar's declared dtype.
        dtype: DType,
        /// The 64-bit pattern as read.
        bits: u64,
    },
    /// C110 — two bases share a name; the decoded program would alias
    /// registers.
    DuplicateBase {
        /// The colliding name.
        name: String,
    },
    /// C111 — a string field holds invalid UTF-8.
    BadUtf8 {
        /// Which string field.
        context: &'static str,
    },
    /// C112 — a tier byte that names no [`bh_observe::Tier`].
    BadTier {
        /// The byte as read.
        value: u8,
    },
}

impl ContainerError {
    /// The stable machine code (`"C100"`–`"C112"`).
    pub fn code(&self) -> &'static str {
        match self {
            ContainerError::BadMagic { .. } => "C100",
            ContainerError::UnsupportedVersion { .. } => "C101",
            ContainerError::Truncated { .. } => "C102",
            ContainerError::SectionTable { .. } => "C103",
            ContainerError::MissingSection { .. } => "C104",
            ContainerError::HostileLength { .. } => "C105",
            ContainerError::UnknownOpcode { .. } => "C106",
            ContainerError::UnknownDType { .. } => "C107",
            ContainerError::BadTag { .. } => "C108",
            ContainerError::BadScalar { .. } => "C109",
            ContainerError::DuplicateBase { .. } => "C110",
            ContainerError::BadUtf8 { .. } => "C111",
            ContainerError::BadTier { .. } => "C112",
        }
    }
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.code())?;
        match self {
            ContainerError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}")
            }
            ContainerError::UnsupportedVersion { found } => {
                write!(f, "unsupported container version {found}")
            }
            ContainerError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            ContainerError::SectionTable { detail } => {
                write!(f, "inconsistent section table: {detail}")
            }
            ContainerError::MissingSection { id } => {
                write!(f, "required section {id} missing")
            }
            ContainerError::HostileLength {
                context,
                requested,
                available,
            } => write!(
                f,
                "{context} claims {requested} but at most {available} remain"
            ),
            ContainerError::UnknownOpcode { name } => {
                write!(f, "unknown opcode mnemonic `{name}`")
            }
            ContainerError::UnknownDType { name } => {
                write!(f, "unknown dtype `{name}`")
            }
            ContainerError::BadTag { context, value } => {
                write!(f, "bad tag byte {value} for {context}")
            }
            ContainerError::BadScalar { dtype, bits } => {
                write!(f, "bit pattern {bits:#x} is not a canonical {dtype} scalar")
            }
            ContainerError::DuplicateBase { name } => {
                write!(f, "duplicate base declaration `{name}`")
            }
            ContainerError::BadUtf8 { context } => {
                write!(f, "invalid UTF-8 in {context}")
            }
            ContainerError::BadTier { value } => {
                write!(f, "byte {value} names no optimisation tier")
            }
        }
    }
}

impl std::error::Error for ContainerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let samples = [
            ContainerError::BadMagic { found: [0; 4] },
            ContainerError::UnsupportedVersion { found: 9 },
            ContainerError::Truncated { context: "x" },
            ContainerError::SectionTable { detail: "d".into() },
            ContainerError::MissingSection { id: 1 },
            ContainerError::HostileLength {
                context: "x",
                requested: 9,
                available: 1,
            },
            ContainerError::UnknownOpcode { name: "OP".into() },
            ContainerError::UnknownDType { name: "q8".into() },
            ContainerError::BadTag {
                context: "operand",
                value: 7,
            },
            ContainerError::BadScalar {
                dtype: DType::Bool,
                bits: 7,
            },
            ContainerError::DuplicateBase { name: "a".into() },
            ContainerError::BadUtf8 { context: "name" },
            ContainerError::BadTier { value: 1 },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &samples {
            assert!(seen.insert(e.code()), "duplicate {}", e.code());
            assert!(e.code().starts_with('C'));
            assert!(e.to_string().starts_with(e.code()), "{e}");
        }
        assert_eq!(seen.len(), 13);
    }
}
