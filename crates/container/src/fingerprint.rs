//! A process-stable, platform-stable 64-bit fingerprint for `Hash` types.
//!
//! `std::collections::hash_map::DefaultHasher` is explicitly not stable
//! across releases or processes, so it can never back a persisted field.
//! [`StableHasher`] is FNV-1a with every integer write pinned to
//! little-endian and `usize` widened to 64 bits, making the digest a pure
//! function of the value's `Hash` impl — suitable for the
//! options-fingerprint field of a plan section, where a restarted server
//! must reproduce the exact value its predecessor wrote.

use std::hash::{Hash, Hasher};

/// FNV-1a offset basis (the same constants `bh_ir::ProgramDigest`'s
/// fingerprint uses).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] whose output depends only on the byte sequence fed to it,
/// never on platform endianness, pointer width, or std internals.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // Widen so 32- and 64-bit builds agree.
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as i64 as u64);
    }
}

/// The stable 64-bit fingerprint of any `Hash` value.
///
/// Used for the plan section's options fingerprint: the runtime hashes
/// its `OptOptions` through this on both the write and the load side, so
/// a plan optimised under different settings is rejected by value, not
/// by trust.
///
/// # Examples
///
/// ```
/// let a = bh_container::stable_fingerprint(&("O2", 12usize));
/// let b = bh_container::stable_fingerprint(&("O2", 12usize));
/// let c = bh_container::stable_fingerprint(&("O2", 13usize));
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn stable_fingerprint<T: Hash>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_pins_the_algorithm() {
        // FNV-1a of [0x61, 0xff]: `Hash for str` feeds the bytes plus a
        // 0xff terminator. Pin the exact value so an accidental algorithm
        // change fails loudly rather than silently orphaning snapshots.
        let got = stable_fingerprint(&"a");
        assert_eq!(got, 0x089b_c907_b544_c769, "{got:#x}");
    }

    #[test]
    fn distinct_values_distinct_fingerprints() {
        let a = stable_fingerprint(&(1u64, true));
        let b = stable_fingerprint(&(1u64, false));
        let c = stable_fingerprint(&(2u64, true));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn usize_matches_u64() {
        assert_eq!(
            stable_fingerprint(&42usize),
            stable_fingerprint(&42u64),
            "usize must widen to u64"
        );
    }
}
