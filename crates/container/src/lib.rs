//! Versioned binary containers for byte-code programs and their
//! optimised plans — the persistence and wire format of the stack.
//!
//! A container is what crosses a trust boundary: a process writes its
//! hot transformation-cache entries to disk, a client ships a program
//! over TCP, a restarted server reads yesterday's plans back. The format
//! is deliberately boring and fully explicit — no serde, no reflection:
//!
//! ```text
//! ┌─────────────────────────────────────────────────────────────┐
//! │ magic  "BHPC"            4 bytes                            │
//! │ format version           u16 LE   (currently 1)             │
//! │ section count            u16 LE                             │
//! │ section table            count × { id: u16 LE, len: u64 LE }│
//! │ section payloads         concatenated, in table order       │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! Section `1` (required) carries the source [`Program`]; section `2`
//! (optional) carries its optimised plan: the transformed instruction
//! sequence, the tier it was compiled at, a fingerprint of the optimiser
//! options, and the source program's canonical digest. Unknown section
//! ids are skipped, so older readers tolerate newer writers that append
//! sections; a bumped *format version* is the breaking-change channel.
//!
//! # Trust boundary
//!
//! Decoding performs **syntactic** validation only (every structural
//! error is a stable [`ContainerError`] code, never a panic) and
//! deliberately cannot mint a `bh_ir::Verified` witness: the plan
//! program comes back as a plain [`Program`]. Disk and wire bytes are
//! untrusted regardless of who claims to have written them — the
//! consumer must re-run `bh_ir::verify` and `bh_ir::check_equiv` before
//! the plan touches the unchecked hot path. `bh-runtime`'s warm-start
//! loader does exactly that and counts rejects rather than trusting
//! blindly.
//!
//! # Examples
//!
//! ```
//! use bh_container::Container;
//! use bh_ir::parse_program;
//!
//! let program = parse_program("BH_ADD a0 [0:8:1] a0 [0:8:1] 1\nBH_SYNC a0\n")?;
//! let bytes = Container::program(program.clone()).encode();
//! let back = Container::decode(&bytes)?;
//! assert_eq!(back.program, program);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod codec;
mod error;
mod fingerprint;

pub use error::ContainerError;
pub use fingerprint::{stable_fingerprint, StableHasher};

use bh_ir::{Program, ProgramDigest};
use bh_observe::Tier;
use codec::{tier_byte, Dec, Enc};

/// The four magic bytes every container starts with ("BHPC": Bohrium
/// plan container).
pub const MAGIC: [u8; 4] = *b"BHPC";

/// The container format version this crate reads and writes.
///
/// Bumped on any change to the section payloads' encoding; readers
/// reject newer versions rather than misparse them.
pub const FORMAT_VERSION: u16 = 1;

/// Section id of the (required) source program payload.
pub const SECTION_PROGRAM: u16 = 1;

/// Section id of the (optional) optimised-plan payload.
pub const SECTION_PLAN: u16 = 2;

/// An optimised plan travelling alongside its source program.
///
/// Everything in here is a *claim* until re-checked: the tier and
/// fingerprint say how the plan was built, the digest says which source
/// it belongs to, and the program is the transformed instruction
/// sequence — none of it is trusted by consumers until verification and
/// audit re-establish it (see the crate docs' trust-boundary argument).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSection {
    /// The optimised instruction sequence (unchecked).
    pub program: Program,
    /// The tier the plan was compiled at.
    pub tier: Tier,
    /// [`stable_fingerprint`] of the optimiser options the plan was
    /// built under. A loader whose live options hash differently must
    /// discard the plan.
    pub options_fingerprint: u64,
    /// The source program's canonical digest bytes
    /// ([`ProgramDigest::as_bytes`]) at write time. Integrity check
    /// only: the loader recomputes the digest from the decoded source
    /// and compares.
    pub source_digest: Vec<u8>,
}

impl PlanSection {
    /// Does the stored digest match `digest` byte-for-byte?
    pub fn digest_matches(&self, digest: &ProgramDigest) -> bool {
        self.source_digest == digest.as_bytes()
    }
}

/// A decoded (or to-be-encoded) container: a program, optionally with
/// its optimised plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    /// The source program.
    pub program: Program,
    /// The optimised plan, if the writer included one.
    pub plan: Option<PlanSection>,
}

impl Container {
    /// A container carrying just a program (the wire shape clients
    /// submit).
    pub fn program(program: Program) -> Container {
        Container {
            program,
            plan: None,
        }
    }

    /// A container carrying a program and its optimised plan (the
    /// persistence shape the runtime snapshots).
    pub fn with_plan(program: Program, plan: PlanSection) -> Container {
        Container {
            program,
            plan: Some(plan),
        }
    }

    /// Encode to the versioned binary format.
    ///
    /// Encoding is canonical: a given `Container` value always produces
    /// the same bytes, and `decode(encode(c)) == c` (see the round-trip
    /// proptest).
    pub fn encode(&self) -> Vec<u8> {
        let mut prog = Enc::new();
        prog.program(&self.program);

        let plan_payload = self.plan.as_ref().map(|plan| {
            let mut e = Enc::new();
            e.u8_(tier_byte(plan.tier));
            e.u64_(plan.options_fingerprint);
            e.bytes_(&plan.source_digest);
            e.program(&plan.program);
            e.out
        });

        let mut out = Enc::new();
        out.out.extend_from_slice(&MAGIC);
        out.u16_(FORMAT_VERSION);
        let nsections = 1 + plan_payload.is_some() as u16;
        out.u16_(nsections);
        out.u16_(SECTION_PROGRAM);
        out.u64_(prog.out.len() as u64);
        if let Some(p) = &plan_payload {
            out.u16_(SECTION_PLAN);
            out.u64_(p.len() as u64);
        }
        out.out.extend_from_slice(&prog.out);
        if let Some(p) = plan_payload {
            out.out.extend_from_slice(&p);
        }
        out.out
    }

    /// Decode from bytes, fail-closed.
    ///
    /// # Errors
    ///
    /// A structured [`ContainerError`] for any violation — truncation,
    /// bad magic, version skew, inconsistent section tables, hostile
    /// lengths, unknown opcodes/dtypes, non-canonical scalars. Never
    /// panics, and never allocates more than the input size admits.
    pub fn decode(bytes: &[u8]) -> Result<Container, ContainerError> {
        let mut dec = Dec::new(bytes);
        let magic = dec.bytes(4, "magic").map_err(|_| {
            let mut found = [0u8; 4];
            found[..bytes.len().min(4)].copy_from_slice(&bytes[..bytes.len().min(4)]);
            ContainerError::BadMagic { found }
        })?;
        if magic != MAGIC {
            return Err(ContainerError::BadMagic {
                found: magic.try_into().expect("4 bytes"),
            });
        }
        let version = dec.u16_("format version")?;
        if version != FORMAT_VERSION {
            return Err(ContainerError::UnsupportedVersion { found: version });
        }
        let nsections = dec.u16_("section count")? as usize;
        let table = dec.bytes(nsections * 10, "section table")?;
        let mut sections: Vec<(u16, u64)> = Vec::with_capacity(nsections);
        for entry in table.chunks_exact(10) {
            let id = u16::from_le_bytes([entry[0], entry[1]]);
            let len = u64::from_le_bytes(entry[2..10].try_into().expect("8 bytes"));
            if sections.iter().any(|&(seen, _)| seen == id) {
                return Err(ContainerError::SectionTable {
                    detail: format!("section {id} listed twice"),
                });
            }
            sections.push((id, len));
        }
        let total: u64 = sections
            .iter()
            .try_fold(0u64, |acc, &(_, len)| acc.checked_add(len))
            .ok_or_else(|| ContainerError::SectionTable {
                detail: "section lengths overflow".into(),
            })?;
        if total != dec.remaining() as u64 {
            return Err(ContainerError::SectionTable {
                detail: format!(
                    "payloads claim {total} bytes but {} remain",
                    dec.remaining()
                ),
            });
        }

        let mut program = None;
        let mut plan = None;
        for (id, len) in sections {
            let payload = dec.bytes(len as usize, "section payload")?;
            match id {
                SECTION_PROGRAM => {
                    let mut d = Dec::new(payload);
                    program = Some(d.program()?);
                    check_drained(&d, "program section")?;
                }
                SECTION_PLAN => {
                    let mut d = Dec::new(payload);
                    let tier = d.tier()?;
                    let options_fingerprint = d.u64_("options fingerprint")?;
                    let source_digest = d.vec_("source digest")?;
                    let plan_program = d.program()?;
                    check_drained(&d, "plan section")?;
                    plan = Some(PlanSection {
                        program: plan_program,
                        tier,
                        options_fingerprint,
                        source_digest,
                    });
                }
                // Unknown sections are skipped: a newer writer may append
                // payloads this reader has no use for.
                _ => {}
            }
        }
        let program = program.ok_or(ContainerError::MissingSection {
            id: SECTION_PROGRAM,
        })?;
        Ok(Container { program, plan })
    }
}

fn check_drained(dec: &Dec<'_>, what: &str) -> Result<(), ContainerError> {
    if dec.remaining() != 0 {
        return Err(ContainerError::SectionTable {
            detail: format!("{what} has {} trailing bytes", dec.remaining()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    fn sample() -> Program {
        parse_program(
            ".base x f64[4,4] input\n.base y f64[4,4]\n\
             BH_MULTIPLY y x 2.0\nBH_ADD y y [0:4:1,0:4:1] 1.0\nBH_SYNC y\n",
        )
        .unwrap()
    }

    #[test]
    fn program_round_trips() {
        let p = sample();
        let bytes = Container::program(p.clone()).encode();
        let back = Container::decode(&bytes).unwrap();
        assert_eq!(back.program, p);
        assert!(back.plan.is_none());
    }

    #[test]
    fn plan_round_trips_with_metadata() {
        let p = sample();
        let digest = p.structural_digest();
        let c = Container::with_plan(
            p.clone(),
            PlanSection {
                program: p.clone(),
                tier: Tier::Tier2,
                options_fingerprint: 0xdead_beef,
                source_digest: digest.as_bytes().to_vec(),
            },
        );
        let back = Container::decode(&c.encode()).unwrap();
        assert_eq!(back, c);
        let plan = back.plan.unwrap();
        assert_eq!(plan.tier, Tier::Tier2);
        assert!(plan.digest_matches(&digest));
        assert!(!plan.digest_matches(&Program::default().structural_digest()));
    }

    #[test]
    fn encode_decode_encode_is_identity() {
        let c = Container::program(sample());
        let bytes = c.encode();
        let again = Container::decode(&bytes).unwrap().encode();
        assert_eq!(bytes, again);
    }

    #[test]
    fn decode_never_trusts_plan_contents() {
        // A plan section claiming a digest that is not the source's must
        // still decode (syntax is fine) — rejecting the *claim* is the
        // loader's job, via digest_matches.
        let p = sample();
        let c = Container::with_plan(
            p.clone(),
            PlanSection {
                program: p.clone(),
                tier: Tier::Tier0,
                options_fingerprint: 0,
                source_digest: vec![1, 2, 3],
            },
        );
        let back = Container::decode(&c.encode()).unwrap();
        assert!(!back.plan.unwrap().digest_matches(&p.structural_digest()));
    }
}
