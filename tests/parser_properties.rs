//! Property tests for the textual byte-code format and view semantics:
//! print ∘ parse round-trips, and `Slice::resolve` agrees with a direct
//! enumeration reference (CPython slicing semantics).

use bohrium_repro::ir::{parse_program, Instruction, Opcode, PrintStyle, Program, ViewRef};
use bohrium_repro::tensor::{DType, Scalar, Shape, Slice};
use proptest::prelude::*;

/// Reference slicing: enumerate the selected indices the way Python does.
fn python_slice_indices(
    len: usize,
    start: Option<i64>,
    stop: Option<i64>,
    step: i64,
) -> Vec<usize> {
    assert_ne!(step, 0);
    let n = len as i64;
    let norm = |v: i64, lower: i64, upper: i64| -> i64 {
        let v = if v < 0 { v + n } else { v };
        v.clamp(lower, upper)
    };
    let (lower, upper) = if step > 0 { (0, n) } else { (-1, n - 1) };
    let start = match start {
        Some(s) => norm(s, lower, upper),
        None => {
            if step > 0 {
                0
            } else {
                n - 1
            }
        }
    };
    let stop = match stop {
        Some(s) => norm(s, lower, upper),
        None => {
            if step > 0 {
                n
            } else {
                -1
            }
        }
    };
    let mut out = Vec::new();
    let mut i = start;
    if step > 0 {
        while i < stop {
            out.push(i as usize);
            i += step;
        }
    } else {
        while i > stop {
            out.push(i as usize);
            i += step;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn slice_resolve_matches_python_reference(
        len in 0usize..24,
        start in proptest::option::of(-30i64..30),
        stop in proptest::option::of(-30i64..30),
        step in prop_oneof![(-5i64..0), (1i64..6)],
    ) {
        let slice = Slice::new(start, stop, step);
        let (first, out_len, got_step) = slice.resolve(len).expect("non-zero step");
        let reference = python_slice_indices(len, start, stop, step);
        prop_assert_eq!(out_len, reference.len());
        prop_assert_eq!(got_step, step);
        if out_len > 0 {
            prop_assert_eq!(first, reference[0]);
            // Full enumeration agrees, via ViewGeom.
            let geom = bohrium_repro::tensor::ViewGeom::from_slices(
                &Shape::vector(len), &[slice]).expect("valid slice");
            let offsets: Vec<usize> = geom.offsets().collect();
            prop_assert_eq!(offsets, reference);
        }
    }

    #[test]
    fn printed_programs_reparse_identically(
        ops in proptest::collection::vec(0usize..4, 1..10),
        consts in proptest::collection::vec(-100i64..100, 10),
        n in 1usize..32,
    ) {
        // Build a random but valid program programmatically.
        let mut p = Program::new();
        let a = p.declare("a0", DType::Float64, Shape::vector(n));
        let b = p.declare("b0", DType::Float64, Shape::vector(n));
        p.push(Instruction::unary(Opcode::Identity, ViewRef::full(a),
            Scalar::F64(consts[0] as f64)));
        p.push(Instruction::unary(Opcode::Identity, ViewRef::full(b),
            Scalar::F64(consts[1] as f64)));
        for (k, &op_idx) in ops.iter().enumerate() {
            let op = [Opcode::Add, Opcode::Subtract, Opcode::Multiply, Opcode::Maximum][op_idx];
            let c = Scalar::F64(consts[(k + 2) % consts.len()] as f64);
            p.push(Instruction::binary(op, ViewRef::full(a), ViewRef::full(b), c));
        }
        p.push(Instruction::sync(ViewRef::full(a)));

        // FULL style (decls + explicit views) must round-trip to the same
        // instruction sequence and semantics.
        let printed = p.to_text(PrintStyle::FULL);
        let q = parse_program(&printed).expect("printed program re-parses");
        prop_assert_eq!(q.instrs().len(), p.instrs().len());
        bohrium_repro::testing::assert_equivalent(&p, &q, 7, 0.0);
        // ... and printing again is a fixpoint.
        prop_assert_eq!(q.to_text(PrintStyle::FULL), printed);
    }

    #[test]
    fn parser_rejects_or_accepts_but_never_panics(text in "[ -~\n]{0,160}") {
        // Robustness: arbitrary printable input must never panic the parser.
        let _ = parse_program(&text);
    }
}
