//! Cross-stack integration: front-end → optimizer → VM → substrate, with
//! results checked against direct host computation.

use bohrium_repro::frontend::Context;
use bohrium_repro::ir::parse_program;
use bohrium_repro::linalg::{matmul, solve_lu};
use bohrium_repro::opt::{OptLevel, OptOptions};
use bohrium_repro::tensor::{random_tensor, DType, Distribution, Scalar, Shape, Tensor};
use bohrium_repro::vm::{Engine, Vm};

/// A small option-pricing-style pipeline (the kind of workload Bohrium's
/// benchmark suite uses): d = (ln(s/k) + (r + v²/2)·t) / (v·√t), through
/// the lazy front-end at every optimisation level, vs direct Rust.
#[test]
fn pricing_pipeline_matches_direct_computation_at_all_levels() {
    let n = 512;
    let spot_host = random_tensor(DType::Float64, Shape::vector(n), 21, Distribution::NonZero);
    let (strike, rate, vol, time) = (1.25f64, 0.05f64, 0.3f64, 2.0f64);

    let direct: Vec<f64> = spot_host
        .to_f64_vec()
        .iter()
        .map(|s| ((s / strike).ln() + (rate + vol * vol / 2.0) * time) / (vol * time.sqrt()))
        .collect();

    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let ctx = Context::with_options(OptOptions::level(level));
        let spot = ctx.array(spot_host.clone());
        let d1 = ((&spot / strike).ln() + (rate + vol * vol / 2.0) * time) / (vol * time.sqrt());
        let got = d1.eval().expect("pipeline executes");
        let expected = Tensor::from_vec(direct.clone());
        assert!(
            got.allclose(&expected, 1e-12),
            "level {level:?} diverged by {}",
            got.max_abs_diff(&expected)
        );
    }
}

/// The frontend's solve() agrees with the substrate and with the rewritten
/// inverse formulation on a non-trivial system.
#[test]
fn three_ways_to_solve_agree() {
    let m = 24;
    let mut a_host = random_tensor(
        DType::Float64,
        Shape::matrix(m, m),
        5,
        Distribution::Uniform,
    );
    for i in 0..m {
        let v = a_host.get(&[i, i]).unwrap().as_f64();
        a_host.set(&[i, i], Scalar::F64(v + m as f64)).unwrap();
    }
    let b_host = random_tensor(DType::Float64, Shape::vector(m), 6, Distribution::Uniform);

    // 1. Substrate.
    let x_sub = solve_lu(&a_host, &b_host).unwrap();
    // 2. Front-end explicit solve.
    let ctx = Context::new();
    let a = ctx.array(a_host.clone());
    let b = ctx.array(b_host.clone());
    let x_solve = a.solve(&b).eval().unwrap();
    // 3. Front-end inverse formulation (rewritten by the optimizer).
    let x_inv = a.inv().matmul(&b).eval().unwrap();

    assert!(x_sub.allclose(&x_solve, 1e-9));
    assert!(x_sub.allclose(&x_inv, 1e-9));
    // ... and it actually solves the system.
    let ax = matmul(&a_host, &x_sub).unwrap();
    assert!(ax.allclose(&b_host, 1e-8));
}

/// Multi-threaded execution is bit-identical to single-threaded for large
/// contiguous element-wise programs.
#[test]
fn threaded_vm_is_bit_identical() {
    let n = 1 << 18;
    let text = format!(
        "BH_IDENTITY a0 [0:{n}:1] 1.000001\n\
         BH_MULTIPLY a0 a0 a0\n\
         BH_ADD a0 a0 0.25\n\
         BH_MULTIPLY a0 a0 1.5\n\
         BH_SYNC a0\n"
    );
    let p = parse_program(&text).unwrap();
    let mut single = Vm::new();
    single.run(&p).unwrap();
    for threads in [2usize, 4, 8] {
        let mut multi = Vm::new();
        multi.set_threads(threads);
        multi.run(&p).unwrap();
        assert_eq!(
            single.read_by_name(&p, "a0").unwrap(),
            multi.read_by_name(&p, "a0").unwrap(),
            "threads={threads}"
        );
    }
}

/// Optimisation and fusion compose: an O2-optimised program executed on
/// the fusing engine still matches the unoptimised naive baseline.
#[test]
fn optimizer_and_fusing_engine_compose() {
    let text = "\
BH_IDENTITY v [0:100000:1] 0
BH_ADD v v 1
BH_ADD v v 1
BH_ADD v v 1
BH_POWER w [0:100000:1] v 10
BH_SYNC w
";
    let reference = parse_program(text).unwrap();
    let mut vm_ref = Vm::new();
    vm_ref.run(&reference).unwrap();
    let expected = vm_ref.read_by_name(&reference, "w").unwrap();

    let mut optimized = reference.clone();
    bohrium_repro::opt::optimize(&mut optimized);
    let mut vm_fused = Vm::with_engine(Engine::Fusing { block: 1024 });
    vm_fused.run(&optimized).unwrap();
    let got = vm_fused.read_by_name(&optimized, "w").unwrap();

    assert!(
        expected.allclose(&got, 1e-6),
        "diff {}",
        expected.max_abs_diff(&got)
    );
    // The optimised program does strictly less work.
    assert!(vm_fused.stats().flops < vm_ref.stats().flops);
}

/// The reduction path agrees with host-side summation across dtypes.
#[test]
fn reductions_match_host_sums() {
    for dtype in [DType::Float64, DType::Int64, DType::Int32] {
        let ctx = Context::new();
        let host = random_tensor(dtype, Shape::vector(1000), 77, Distribution::Uniform);
        let expected: f64 = host.to_f64_vec().iter().sum();
        let arr = ctx.array(host);
        let got = arr.sum().eval().unwrap().to_f64_vec()[0];
        assert!(
            (got - expected).abs() < 1e-9 * expected.abs().max(1.0),
            "{dtype}: {got} vs {expected}"
        );
    }
}

/// Stencil-style sliced views survive the full optimise + execute path.
#[test]
fn sliced_stencil_with_optimizer() {
    let text = "\
.base g f64[16] input
.base out f64[16]
BH_IDENTITY out 0
BH_ADD out[1:15:1] g[0:14:1] g[2:16:1]
BH_MULTIPLY out[1:15:1] out[1:15:1] 0.5
BH_SYNC out
";
    let p = parse_program(text).unwrap();
    let mut q = p.clone();
    bohrium_repro::opt::optimize(&mut q);
    bohrium_repro::testing::assert_equivalent(&p, &q, 13, 1e-12);
}
