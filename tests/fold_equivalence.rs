//! Property tests pinning transformation-time arithmetic to execution-time
//! arithmetic: for every foldable op-code × integer dtype, the constant
//! folder (`bh_opt::const_eval`) must produce exactly the value the VM
//! computes for the same operands. This is the "folder ≡ VM" leg of the
//! DESIGN.md §6 soundness invariant — a folder that disagrees with the
//! machine turns constant merging into silent miscompilation (cf. the
//! u8 `255 / 2` and floored-mod regressions this suite was built around).

use bohrium_repro::ir::{parse_program, Opcode};
use bohrium_repro::opt::const_eval;
use bohrium_repro::tensor::{DType, Scalar};
use bohrium_repro::testing::test_threads;
use bohrium_repro::vm::{Engine, Vm};
use proptest::prelude::*;

/// Every op-code the integer branch of `const_eval` handles.
const INT_FOLDABLE: &[Opcode] = &[
    Opcode::Add,
    Opcode::Subtract,
    Opcode::Multiply,
    Opcode::Divide,
    Opcode::Mod,
    Opcode::Power,
    Opcode::Maximum,
    Opcode::Minimum,
    Opcode::BitwiseAnd,
    Opcode::BitwiseOr,
    Opcode::BitwiseXor,
    Opcode::LeftShift,
    Opcode::RightShift,
];

const INT_DTYPES: &[DType] = &[
    DType::UInt8,
    DType::UInt16,
    DType::UInt32,
    DType::UInt64,
    DType::Int8,
    DType::Int16,
    DType::Int32,
    DType::Int64,
];

/// Boundary operands: type-width edges where truncation bugs live.
const SPECIAL: &[i64] = &[
    i64::MIN,
    i64::MAX,
    i32::MAX as i64,
    u32::MAX as i64,
    (u32::MAX as i64) + 1,
    127,
    128,
    255,
    256,
    -128,
    -129,
    65535,
];

fn arb_op() -> impl Strategy<Value = Opcode> {
    (0usize..INT_FOLDABLE.len()).prop_map(|i| INT_FOLDABLE[i])
}

fn arb_dtype() -> impl Strategy<Value = DType> {
    (0usize..INT_DTYPES.len()).prop_map(|i| INT_DTYPES[i])
}

/// Operand values: small magnitudes (where div/mod/pow corner cases live),
/// values near type-width boundaries, and arbitrary bit patterns.
fn arb_operand() -> impl Strategy<Value = i64> {
    prop_oneof![
        -9i64..10,
        (0usize..SPECIAL.len()).prop_map(|i| SPECIAL[i]),
        i64::MIN..i64::MAX,
    ]
}

/// Execute `a ⊕ b` on the actual byte-code VM in `dtype` arithmetic and
/// return the resulting element.
fn vm_eval(op: Opcode, a: i64, b: i64, dtype: DType, threads: usize) -> Scalar {
    // `BH_IDENTITY x a` materialises the left operand in-dtype; the op
    // then runs with the right operand as an immediate constant — the
    // exact shape constant merging rewrites.
    let text = format!(
        ".base x {dtype}[4]\nBH_IDENTITY x {a}\n{} x x {b}\nBH_SYNC x\n",
        op.name()
    );
    let program = parse_program(&text).expect("generated program parses");
    let mut vm = Vm::with_engine(Engine::Fusing { block: 2 });
    if threads > 1 {
        vm.set_threads(threads).set_par_threshold(1);
    }
    vm.run(&program).expect("program executes");
    let x = vm.read_by_name(&program, "x").expect("synced");
    let first = x.get(&[0]).expect("element 0");
    // All four lanes saw the same operands; sanity-check broadcast.
    assert_eq!(first, x.get(&[3]).expect("element 3"));
    first
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // `const_eval(op, a, b, dtype)` must equal the VM-executed op for
    // every foldable opcode × integer dtype (exact, bit-for-bit).
    #[test]
    fn const_eval_matches_vm(
        op in arb_op(),
        dtype in arb_dtype(),
        a in arb_operand(),
        b in arb_operand(),
    ) {
        let folded = const_eval(op, Scalar::I64(a), Scalar::I64(b), dtype)
            .expect("integer branch handles every op in INT_FOLDABLE");
        let executed = vm_eval(op, a, b, dtype, test_threads());
        prop_assert_eq!(
            folded,
            executed,
            "{} {} {} in {}: folder {:?} != VM {:?}",
            a, op.name(), b, dtype, folded, executed
        );
    }
}

#[test]
fn const_eval_matches_vm_on_known_regressions() {
    let threads = test_threads();
    // (op, a, b, dtype) corner cases that diverged before this suite.
    let cases = [
        (Opcode::Divide, 255, 2, DType::UInt8),     // folder said 0
        (Opcode::Mod, -7, -3, DType::Int32),        // rem_euclid said 2
        (Opcode::Mod, 7, -3, DType::Int32),         // floored: -2
        (Opcode::Maximum, -1, 1, DType::UInt8),     // unsigned compare
        (Opcode::Minimum, -1, 1, DType::UInt16),    // unsigned compare
        (Opcode::RightShift, 254, 1, DType::UInt8), // logical shift
        (Opcode::RightShift, -2, 1, DType::Int8),   // arithmetic shift
        (Opcode::Power, 2, (u32::MAX as i64) + 1, DType::UInt64), // saturate
        (Opcode::Divide, i64::MIN, -1, DType::Int64), // wrapping div
        (Opcode::Mod, i64::MIN, -1, DType::Int64),  // wrapping rem
    ];
    for (op, a, b, dtype) in cases {
        let folded = const_eval(op, Scalar::I64(a), Scalar::I64(b), dtype).unwrap();
        let executed = vm_eval(op, a, b, dtype, threads);
        assert_eq!(
            folded,
            executed,
            "{a} {} {b} in {dtype}: folder {folded:?} != VM {executed:?}",
            op.name()
        );
    }
}
