//! Integration tests: every listing of the paper, verbatim, through the
//! whole stack (parse → validate → optimise → execute → compare).

use bohrium_repro::ir::{parse_program, parse_program_with, Opcode, ParseOptions, PrintStyle};
use bohrium_repro::opt::{optimize, optimize_at, OptLevel};
use bohrium_repro::tensor::{DType, Shape};
use bohrium_repro::testing::assert_equivalent;
use bohrium_repro::vm::Vm;

/// Listing 2 — "Adding three ones with Bohrium", exactly as printed.
const LISTING_2: &str = "\
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
";

/// Listing 3 — "Optimized adding three ones with Bohrium" (views elided in
/// the paper; shape supplied via options).
const LISTING_3: &str = "\
BH_IDENTITY a0 0
BH_ADD a0 a0 3
BH_SYNC a0
";

/// Listing 5 — x¹⁰ with five multiplies (comments as printed).
const LISTING_5: &str = "\
BH_IDENTITY a0 [0:64:1] 1.01  # initialize the tensor , x
BH_MULTIPLY a1 [0:64:1] a0 [0:64:1] a0 [0:64:1] # x^2
BH_MULTIPLY a1 a1 a1 # x^4
BH_MULTIPLY a1 a1 a1 # x^8
BH_MULTIPLY a1 a1 a0 # x^9
BH_MULTIPLY a1 a1 a0 # x^10
BH_SYNC a1
";

fn listing3_options() -> ParseOptions {
    ParseOptions {
        default_dtype: DType::Float64,
        default_shape: Some(Shape::vector(10)),
    }
}

#[test]
fn listing2_parses_validates_and_executes() {
    let p = parse_program(LISTING_2).unwrap();
    bohrium_repro::ir::validate(&p).unwrap();
    let mut vm = Vm::new();
    vm.run(&p).unwrap();
    assert_eq!(
        vm.read_by_name(&p, "a0").unwrap().to_f64_vec(),
        vec![3.0; 10]
    );
}

#[test]
fn listing2_round_trips_through_the_printer() {
    let p = parse_program(LISTING_2).unwrap();
    assert_eq!(p.to_text(PrintStyle::LISTING), LISTING_2);
}

#[test]
fn optimizing_listing2_yields_listing3() {
    let mut p = parse_program(LISTING_2).unwrap();
    optimize(&mut p);
    let expected = parse_program_with(LISTING_3, &listing3_options()).unwrap();
    // Same instruction structure: one identity, one add-of-3, one sync.
    assert_eq!(p.instrs().len(), expected.instrs().len());
    assert_eq!(p.count_op(Opcode::Add), 1);
    let text = p.to_text(PrintStyle::COMPACT);
    assert!(text.contains("BH_ADD a0 a0 3"), "{text}");
}

#[test]
fn listing2_and_listing3_are_semantically_equal() {
    let unopt = parse_program(LISTING_2).unwrap();
    let opt = parse_program_with(LISTING_3, &listing3_options()).unwrap();
    assert_equivalent(&unopt, &opt, 42, 0.0);
}

#[test]
fn listing5_parses_and_computes_x_to_10() {
    let p = parse_program(LISTING_5).unwrap();
    assert_eq!(p.count_op(Opcode::Multiply), 5);
    let mut vm = Vm::new();
    vm.run(&p).unwrap();
    let expected = 1.01f64.powi(10);
    for v in vm.read_by_name(&p, "a1").unwrap().to_f64_vec() {
        assert!((v - expected).abs() < 1e-12, "{v} vs {expected}");
    }
}

#[test]
fn listing4_optimizes_past_listing5() {
    // Listing 4: x^10 with nine multiplies.
    let mut text = String::from(
        "BH_IDENTITY a0 [0:64:1] 1.01\nBH_MULTIPLY a1 [0:64:1] a0 [0:64:1] a0 [0:64:1]\n",
    );
    for _ in 0..8 {
        text.push_str("BH_MULTIPLY a1 a1 a0\n");
    }
    text.push_str("BH_SYNC a1\n");
    let unopt = parse_program(&text).unwrap();
    let mut opt = unopt.clone();
    optimize(&mut opt);
    // The re-roll + expansion pipeline lands on the optimal 4-multiply
    // schedule — one better than the paper's Listing 5.
    assert_eq!(opt.count_op(Opcode::Multiply), 4, "{opt}");
    assert_eq!(opt.count_op(Opcode::Power), 0);
    assert_equivalent(&unopt, &opt, 7, 1e-9);
}

#[test]
fn power_bytecode_expands_to_optimal_chain() {
    let unopt = parse_program(
        "BH_IDENTITY a0 [0:64:1] 1.01\n\
         BH_POWER a1 [0:64:1] a0 [0:64:1] 10\n\
         BH_SYNC a1\n",
    )
    .unwrap();
    let mut opt = unopt.clone();
    optimize(&mut opt);
    assert_eq!(opt.count_op(Opcode::Power), 0);
    assert_eq!(opt.count_op(Opcode::Multiply), 4);
    assert_equivalent(&unopt, &opt, 3, 1e-9);
}

#[test]
fn eq2_pattern_rewrites_and_matches() {
    let unopt = parse_program(
        ".base a f64[12,12] input\n\
         .base b f64[12] input\n\
         .base t f64[12,12]\n\
         .base x f64[12]\n\
         BH_INVERSE t a\n\
         BH_MATMUL x t b\n\
         BH_SYNC x\n",
    )
    .unwrap();
    let mut opt = unopt.clone();
    optimize(&mut opt);
    assert_eq!(opt.count_op(Opcode::Inverse), 0);
    assert_eq!(opt.count_op(Opcode::Solve), 1);
    // Inputs are NonZero-random with a dominant... no diagonal boost here,
    // but 12x12 uniform(1,2) matrices are almost surely invertible; allow a
    // loose float tolerance since the two algorithms round differently.
    assert_equivalent(&unopt, &opt, 5, 1e-6);
}

#[test]
fn o0_keeps_every_listing_unchanged() {
    for (text, opts) in [
        (LISTING_2, ParseOptions::default()),
        (LISTING_5, ParseOptions::default()),
    ] {
        let p = parse_program_with(text, &opts).unwrap();
        let mut q = p.clone();
        optimize_at(&mut q, OptLevel::O0);
        assert_eq!(p, q);
    }
}

#[test]
fn full_style_round_trip_preserves_semantics() {
    for text in [LISTING_2, LISTING_5] {
        let p = parse_program(text).unwrap();
        let printed = p.to_text(PrintStyle::FULL);
        let q = parse_program(&printed).unwrap();
        assert_equivalent(&p, &q, 9, 0.0);
    }
}
