//! Integration tests for the `bh-runtime` transformation cache: the
//! acceptance surface of the unified Session API. One `Runtime` shared by
//! many contexts/threads must optimise each distinct byte-code structure
//! exactly once, serve repeats from the cache with identical results, and
//! aggregate statistics across every user.

use bohrium_repro::frontend::Context;
use bohrium_repro::ir::parse_program;
use bohrium_repro::opt::{OptLevel, OptOptions};
use bohrium_repro::runtime::Runtime;
use bohrium_repro::tensor::{DType, Shape, Tensor};
use std::sync::Arc;

fn add_chain(n: usize, k: usize, constant: f64) -> bohrium_repro::ir::Program {
    let mut text = format!("BH_IDENTITY a0 [0:{n}:1] 0\n");
    for _ in 0..k {
        text.push_str(&format!("BH_ADD a0 a0 {constant}\n"));
    }
    text.push_str("BH_SYNC a0\n");
    parse_program(&text).expect("generated program parses")
}

#[test]
fn same_sequence_twice_optimises_once_with_identical_results() {
    let rt = Runtime::new();
    let p = add_chain(64, 3, 1.0);
    let reg = p.reg_by_name("a0").unwrap();

    let (v1, o1) = rt.eval(&p, &[], reg).unwrap();
    let (v2, o2) = rt.eval(&p, &[], reg).unwrap();

    assert_eq!(v1, v2, "cached plan must produce identical results");
    assert!(!o1.cache_hit);
    assert!(o2.cache_hit, "second eval of the same trace must hit");

    // The fixpoint ran exactly once: rules_fired froze at the first
    // eval's count and the miss counter never moved again.
    let stats = rt.stats();
    assert_eq!(stats.evals, 2);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(
        stats.rules_fired,
        o1.report().total_applications() as u64,
        "no rewrite work after the first optimisation"
    );
}

#[test]
fn differing_constants_shapes_and_levels_get_distinct_keys() {
    let rt = Runtime::new();
    let base = add_chain(64, 3, 1.0);
    let reg = base.reg_by_name("a0").unwrap();
    rt.eval(&base, &[], reg).unwrap();
    assert_eq!(rt.cached_plans(), 1);

    // Different constant → different structure → new entry.
    let other_const = add_chain(64, 3, 2.0);
    let (_, o) = rt.eval(&other_const, &[], reg).unwrap();
    assert!(!o.cache_hit);
    assert_eq!(rt.cached_plans(), 2);

    // Different shape → new entry.
    let other_shape = add_chain(128, 3, 1.0);
    let (_, o) = rt.eval(&other_shape, &[], reg).unwrap();
    assert!(!o.cache_hit);
    assert_eq!(rt.cached_plans(), 3);

    // Same program under different opt options → new entry keyed by the
    // options fingerprint.
    let (_, o) = rt
        .eval_with(&base, &[], reg, &OptOptions::level(OptLevel::O0))
        .unwrap();
    assert!(!o.cache_hit);
    assert_eq!(rt.cached_plans(), 4);

    // ... while the original is still served from cache.
    let (_, o) = rt.eval(&base, &[], reg).unwrap();
    assert!(o.cache_hit);
    assert_eq!(rt.cached_plans(), 4);
}

#[test]
fn renamed_registers_are_the_same_key() {
    let rt = Runtime::new();
    let a = parse_program("BH_IDENTITY v [0:8:1] 5\nBH_ADD v v 1\nBH_SYNC v\n").unwrap();
    let b = parse_program("BH_IDENTITY w [0:8:1] 5\nBH_ADD w w 1\nBH_SYNC w\n").unwrap();
    rt.eval(&a, &[], a.reg_by_name("v").unwrap()).unwrap();
    let (t, o) = rt.eval(&b, &[], b.reg_by_name("w").unwrap()).unwrap();
    assert!(o.cache_hit, "register names must not partition the cache");
    assert_eq!(t.to_f64_vec(), vec![6.0; 8]);
}

#[test]
fn concurrent_evals_on_one_runtime_stay_correct() {
    let rt = Runtime::builder().build_shared();
    let threads = 8;
    let iterations = 25;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                // Each thread alternates between a shared structure (cache
                // contention) and a thread-distinct one (cache growth).
                let shared = add_chain(100, 4, 1.0);
                let own = add_chain(100, 4, 2.0 + t as f64);
                let shared_reg = shared.reg_by_name("a0").unwrap();
                let own_reg = own.reg_by_name("a0").unwrap();
                for _ in 0..iterations {
                    let (v, _) = rt.eval(&shared, &[], shared_reg).unwrap();
                    assert_eq!(v.to_f64_vec(), vec![4.0; 100]);
                    let (v, _) = rt.eval(&own, &[], own_reg).unwrap();
                    assert_eq!(v.to_f64_vec(), vec![4.0 * (2.0 + t as f64); 100]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = rt.stats();
    assert_eq!(stats.evals, (threads * iterations * 2) as u64);
    // 9 distinct structures; racing first-misses may duplicate a few
    // optimisations, but the steady state must be hits.
    assert!(
        stats.cache_hits >= stats.evals - 9 - (threads as u64),
        "expected mostly hits, got {stats}"
    );
}

#[test]
fn two_contexts_sharing_a_runtime_combine_stats() {
    let rt = Runtime::builder().build_shared();
    let ctx1 = Context::with_runtime(Arc::clone(&rt));
    let ctx2 = Context::with_runtime(Arc::clone(&rt));

    let mut a = ctx1.zeros(DType::Float64, Shape::vector(32));
    a += 1.0;
    a += 1.0;
    let mut b = ctx2.zeros(DType::Float64, Shape::vector(32));
    b += 1.0;
    b += 1.0;

    let (ta, oa) = a.eval_outcome().unwrap();
    let (tb, ob) = b.eval_outcome().unwrap();
    assert_eq!(ta, tb);
    assert!(!oa.cache_hit);
    assert!(
        ob.cache_hit,
        "ctx2 recorded the same trace ctx1 already paid for"
    );

    // One combined snapshot covers both contexts.
    let stats = rt.stats();
    assert_eq!(stats.evals, 2);
    assert_eq!(stats.cache_hits + stats.cache_misses, 2);
    assert_eq!(stats.exec.syncs, 2);
    assert!(stats.exec.kernels > 0);
}

#[test]
fn bound_inputs_are_not_part_of_the_key() {
    // Serving scenario: same traced computation, different request data.
    let rt = Runtime::new();
    let p = parse_program(".base x f64[4] input\n.base y f64[4]\nBH_MULTIPLY y x x\nBH_SYNC y\n")
        .unwrap();
    let x = p.reg_by_name("x").unwrap();
    let y = p.reg_by_name("y").unwrap();
    for (i, input) in [vec![1.0f64, 2.0, 3.0, 4.0], vec![5.0f64, 6.0, 7.0, 8.0]]
        .into_iter()
        .enumerate()
    {
        let expected: Vec<f64> = input.iter().map(|v| v * v).collect();
        let (v, o) = rt.eval(&p, &[(x, Tensor::from_vec(input))], y).unwrap();
        assert_eq!(v.to_f64_vec(), expected);
        assert_eq!(o.cache_hit, i > 0, "plan cached, data fresh");
    }
    assert_eq!(rt.cached_plans(), 1);
}

#[test]
fn cache_capacity_zero_disables_reuse_but_not_correctness() {
    let rt = Runtime::builder().cache_capacity(0).build();
    let p = add_chain(32, 3, 1.0);
    let reg = p.reg_by_name("a0").unwrap();
    let (v1, o1) = rt.eval(&p, &[], reg).unwrap();
    let (v2, o2) = rt.eval(&p, &[], reg).unwrap();
    assert_eq!(v1, v2);
    assert!(!o1.cache_hit && !o2.cache_hit);
    assert_eq!(rt.stats().cache_misses, 2);
}
