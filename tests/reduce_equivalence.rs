//! Reduction/scan equivalence: serial and parallel execution must agree
//! **bit-for-bit** for every reduction/scan op-code × dtype × thread
//! count — the invariant DESIGN.md §11's deterministic combine tree
//! exists to guarantee. Covers non-power-of-two lengths straddling the
//! canonical partial-block boundary, strided/sliced input views, rank-2
//! axis reductions (the lane-parallel path) and fused chains feeding a
//! reduction. The VM thread count honours `BH_VM_TEST_THREADS` (CI runs
//! the {1, 2, 4} matrix; 2 exercises uneven shard splits).

use bohrium_repro::ir::parse_program;
use bohrium_repro::testing::{run_synced, run_synced_threads, test_threads};
use bohrium_repro::vm::Engine;
use proptest::prelude::*;
use std::collections::BTreeMap;

use bohrium_repro::tensor::Tensor;

/// The reduction op-codes and the scalar-output dtype they produce for a
/// given input dtype (bool widens to i64).
const REDUCTIONS: [&str; 4] = [
    "BH_ADD_REDUCE",
    "BH_MULTIPLY_REDUCE",
    "BH_MINIMUM_REDUCE",
    "BH_MAXIMUM_REDUCE",
];
const SCANS: [&str; 2] = ["BH_ADD_ACCUMULATE", "BH_MULTIPLY_ACCUMULATE"];

fn out_dtype(dtype: &str) -> &str {
    if dtype == "bool" {
        "i64"
    } else {
        dtype
    }
}

/// Run `text` serially and at every thread count under test, on both
/// engines, and assert all synced outputs are exactly equal.
fn assert_thread_and_engine_invariant(text: &str) {
    let p = parse_program(text).unwrap_or_else(|e| panic!("program must parse: {e}\n{text}"));
    let reference: BTreeMap<String, Tensor> =
        run_synced(&p, 41, Engine::Naive).expect("serial naive run");
    // 2 and 3 split 4096-grained lanes unevenly; the env knob (CI matrix)
    // and a 4-way floor cover the multi-worker steady state.
    let threads = [2usize, 3, test_threads().max(4)];
    for engine in [Engine::Naive, Engine::Fusing { block: 512 }] {
        for t in [1usize].iter().chain(&threads) {
            let got = run_synced_threads(&p, 41, engine, *t).expect("threaded run");
            assert_eq!(
                reference.len(),
                got.len(),
                "{engine:?}×{t}: synced register sets differ"
            );
            for (name, want) in &reference {
                assert_eq!(
                    want, &got[name],
                    "{engine:?}×{t}: `{name}` diverged\n{text}"
                );
            }
        }
    }
}

fn arb_dtype() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("f64"),
        Just("f32"),
        Just("i64"),
        Just("i32"),
        Just("u8"),
        Just("u16"),
        Just("bool"),
    ]
}

fn arb_len() -> impl Strategy<Value = usize> {
    // Non-powers-of-two, straddling the 4096-element canonical block.
    prop_oneof![
        1usize..64,
        4090usize..4103,
        5000usize..9001,
        Just(1usize),
        Just(4096usize),
        Just(8192usize),
    ]
}

proptest! {
    #[test]
    fn rank1_reductions_bit_identical(
        op in prop_oneof![(0usize..4).prop_map(|i| REDUCTIONS[i])],
        dtype in arb_dtype(),
        n in arb_len(),
    ) {
        let text = format!(
            ".base x {dtype}[{n}] input\n.base s {}[]\n\
             {op} s x 0\nBH_SYNC s\n",
            out_dtype(dtype),
        );
        assert_thread_and_engine_invariant(&text);
    }

    #[test]
    fn rank1_scans_bit_identical(
        op in prop_oneof![(0usize..2).prop_map(|i| SCANS[i])],
        dtype in arb_dtype(),
        n in arb_len(),
    ) {
        let text = format!(
            ".base x {dtype}[{n}] input\n.base c {dtype}[{n}]\n\
             {op} c x 0\nBH_SYNC c\n"
        );
        assert_thread_and_engine_invariant(&text);
    }

    #[test]
    fn strided_and_sliced_views_bit_identical(
        op in prop_oneof![(0usize..4).prop_map(|i| REDUCTIONS[i])],
        dtype in prop_oneof![Just("f64"), Just("i64"), Just("u8")],
        n in 16usize..9001,
        start in 0usize..5,
        step in 2usize..5,
    ) {
        // Reduce and scan over x[start:n:step] — the direct-borrow path
        // walks the strided lane without materialising.
        let m = (n - start).div_ceil(step);
        let reduce = format!(
            ".base x {dtype}[{n}] input\n.base s {}[]\n\
             {op} s x [{start}:{n}:{step}] 0\nBH_SYNC s\n",
            out_dtype(dtype),
        );
        assert_thread_and_engine_invariant(&reduce);
        let scan = format!(
            ".base x {dtype}[{n}] input\n.base c {dtype}[{m}]\n\
             BH_ADD_ACCUMULATE c x [{start}:{n}:{step}] 0\nBH_SYNC c\n"
        );
        assert_thread_and_engine_invariant(&scan);
    }

    #[test]
    fn rank2_axis_reductions_bit_identical(
        op in prop_oneof![(0usize..4).prop_map(|i| REDUCTIONS[i])],
        dtype in prop_oneof![Just("f64"), Just("f32"), Just("i32")],
        rows in 1usize..40,
        cols in 1usize..40,
        axis in 0usize..2,
    ) {
        // Multi-lane path: every lane is a plain serial fold wherever it
        // runs, so sharding over lanes cannot re-associate anything.
        let kept = if axis == 0 { cols } else { rows };
        let text = format!(
            ".base m {dtype}[{rows},{cols}] input\n.base s {}[{kept}]\n\
             {op} s m {axis}\nBH_SYNC s\n",
            out_dtype(dtype),
        );
        assert_thread_and_engine_invariant(&text);
        let scan = format!(
            ".base m {dtype}[{rows},{cols}] input\n.base c {dtype}[{rows},{cols}]\n\
             BH_ADD_ACCUMULATE c m {axis}\nBH_SYNC c\n"
        );
        assert_thread_and_engine_invariant(&scan);
    }

    #[test]
    fn fused_chain_feeding_reduction_bit_identical(
        op in prop_oneof![(0usize..4).prop_map(|i| REDUCTIONS[i])],
        n in prop_oneof![2usize..64, 4090usize..4103, 5000usize..9001],
        scale in 1i64..5,
        shift in 0i64..7,
    ) {
        // The fusing engine contracts chain + reduction into one sharded
        // kernel with per-block accumulators; results must match the
        // naive engine's separate chain-then-reduce bit-for-bit.
        let text = format!(
            ".base x f64[{n}] input\n.base s f64[]\n\
             BH_MULTIPLY x x {scale}\n\
             BH_ADD x x {shift}\n\
             {op} s x 0\nBH_SYNC s\n"
        );
        assert_thread_and_engine_invariant(&text);
    }

    #[test]
    fn in_place_scans_bit_identical(
        dtype in prop_oneof![Just("f64"), Just("i64")],
        n in prop_oneof![1usize..64, 4000usize..8500],
    ) {
        // c aliases the scanned register: the materialise-first path.
        let text = format!(
            ".base x {dtype}[{n}] input\n\
             BH_ADD_ACCUMULATE x x 0\nBH_SYNC x\n"
        );
        assert_thread_and_engine_invariant(&text);
    }
}

/// Fixed corpus pinning the canonical-block boundary cases (cheap enough
/// to run exhaustively every build, shrinking-free).
#[test]
fn block_boundary_corpus() {
    for n in [1usize, 2, 4095, 4096, 4097, 8191, 8192, 8193, 12_289] {
        let text = format!(
            ".base x f64[{n}] input\n.base s f64[]\n.base c f64[{n}]\n\
             BH_ADD_REDUCE s x 0\n\
             BH_ADD_ACCUMULATE c x 0\n\
             BH_SYNC s\nBH_SYNC c\n"
        );
        assert_thread_and_engine_invariant(&text);
    }
}

/// The scalar produced by a parallel sum equals the serial kernel's
/// canonical value (not merely *some* reassociation): spot-check against
/// an independently computed blocked reference.
#[test]
fn parallel_sum_value_is_canonical() {
    let n = 10_000usize;
    let text = format!(".base x f64[{n}] input\n.base s f64[]\nBH_ADD_REDUCE s x 0\nBH_SYNC s\n");
    let p = parse_program(&text).unwrap();
    let input = bohrium_repro::testing::input_tensor(&p, 0, 41);
    let vals = input.to_f64_vec();
    let mut want = 0.0f64;
    for blk in vals.chunks(4096) {
        let mut partial = 0.0f64;
        for v in blk {
            partial += v;
        }
        want += partial;
    }
    for threads in [1usize, 2, 4] {
        let got = run_synced_threads(&p, 41, Engine::Naive, threads).unwrap();
        assert_eq!(got["s"].to_f64_vec(), vec![want], "threads={threads}");
    }
}
