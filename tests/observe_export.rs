//! Exporter contract tests.
//!
//! Two properties pinned here:
//!
//! 1. **Golden rendering** — the Prometheus text exposition and the JSON
//!    rendering of a fixed, synthetic metric snapshot are compared
//!    byte-for-byte against `tests/golden/metrics.{prom,json}`. Metric
//!    *names* are a public contract (dashboards and alert rules key on
//!    them), so any rename or format drift must show up as a reviewed
//!    golden diff. Regenerate deliberately with
//!    `BLESS_GOLDEN=1 cargo test --test observe_export`.
//!
//! 2. **Thread-count determinism** — the per-digest [`ProfileTable`]'s
//!    deterministic counters (hits, plan builds, op-code totals and the
//!    analytic `ExecStats` subset) are bit-identical however many VM
//!    worker threads execute the programs. Wall-clock histograms and
//!    shard counts are observational and deliberately excluded from the
//!    compared key.

use bohrium_repro::ir::{parse_program, Opcode};
use bohrium_repro::observe::{EvalSample, MetricSet, ProfileTable, Tier};
use bohrium_repro::runtime::{AuditCounters, Runtime, RuntimeStats, TierDecisions};
use bohrium_repro::serve::ServeStats;
use bohrium_repro::testing::test_threads;
use bohrium_repro::vm::ExecStats;
use std::path::PathBuf;
use std::time::Duration;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `rendered` against the golden file, or rewrite the golden
/// when `BLESS_GOLDEN` is set.
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run `BLESS_GOLDEN=1 cargo test --test observe_export` to create it")
    });
    assert_eq!(
        rendered, want,
        "rendered metrics drifted from {path:?}; if the change is intentional, regenerate with `BLESS_GOLDEN=1 cargo test --test observe_export` and review the diff"
    );
}

/// A fully synthetic, fully deterministic snapshot: fixed counters, fixed
/// durations — no wall clocks anywhere, so the rendering is stable across
/// machines and runs.
fn synthetic_metrics() -> MetricSet {
    let exec = ExecStats {
        instructions: 40,
        kernels: 12,
        fused_groups: 8,
        par_shards: 0,
        reduce_shards: 0,
        fused_reductions: 2,
        elements_written: 640,
        bytes_read: 5120,
        bytes_written: 5120,
        flops: 1280,
        syncs: 10,
    };
    let runtime = RuntimeStats {
        evals: 10,
        cache_hits: 8,
        cache_misses: 2,
        verifications: 3,
        rules_fired: 14,
        opt_iterations: 6,
        eval_nanos: 123_456,
        exec,
        tiers: TierDecisions {
            tier0_builds: 2,
            promotions: 1,
            failed_promotions: 0,
            rebaselines: 1,
        },
        audits: AuditCounters {
            passed: 2,
            failed: 1,
            rolled_back: 1,
        },
        warm_loads: 3,
        warm_rejects: 1,
    };

    let mut serve = ServeStats {
        submitted: 12,
        rejected: 2,
        completed: 10,
        batches: 4,
        lint_warnings: 3,
        peak_queue_depth: 6,
        ..ServeStats::default()
    };
    serve.batch_sizes.record(2);
    serve.batch_sizes.record(3);
    serve.batch_sizes.record(2);
    serve.batch_sizes.record(3);
    for micros in [50u64, 80, 80, 120, 200] {
        serve.latency.record(Duration::from_micros(micros));
    }

    let table = ProfileTable::new(64);
    let opcodes = [(Opcode::Add, 3u64), (Opcode::Multiply, 1u64)];
    table.record_plan_build(
        0xfeed_f00d,
        Duration::from_micros(30),
        Duration::from_micros(5),
        &opcodes,
    );
    table.set_tier(0xfeed_f00d, Tier::Tier2);
    let per_eval = ExecStats {
        instructions: 4,
        kernels: 1,
        fused_groups: 1,
        elements_written: 64,
        bytes_read: 512,
        bytes_written: 512,
        flops: 128,
        syncs: 1,
        ..ExecStats::default()
    };
    for _ in 0..2 {
        table.record_eval(
            0xfeed_f00d,
            &EvalSample {
                bind_nanos: 1_000,
                execute_nanos: 8_000,
                read_back_nanos: 500,
                exec: per_eval,
            },
            &opcodes,
        );
        table.record_queue_wait(0xfeed_f00d, Duration::from_micros(4));
    }

    MetricSet::collect_from(&[&serve, &runtime, &table])
}

#[test]
fn prometheus_rendering_matches_the_golden_file() {
    check_golden("metrics.prom", &synthetic_metrics().to_prometheus());
}

#[test]
fn json_rendering_matches_the_golden_file() {
    check_golden("metrics.json", &synthetic_metrics().to_json());
}

/// The workload for the determinism check: big enough to shard across
/// worker threads on both the element-wise and the reduction paths.
fn workloads() -> Vec<bohrium_repro::ir::Program> {
    vec![
        parse_program(
            ".base x f64[4096] input\n.base y f64[4096]\n\
             BH_MULTIPLY y x x\nBH_ADD y y x\nBH_ADD y y 1\nBH_SYNC y\n",
        )
        .unwrap(),
        parse_program(".base x f64[4096] input\n.base s f64[]\nBH_ADD_REDUCE s x 0\nBH_SYNC s\n")
            .unwrap(),
    ]
}

#[test]
fn profile_counters_are_bit_identical_across_thread_counts() {
    // {1, 2, 4} plus whatever the CI matrix pins via BH_VM_TEST_THREADS.
    let mut counts = vec![1usize, 2, 4, test_threads()];
    counts.sort_unstable();
    counts.dedup();

    let keys_per_count: Vec<_> = counts
        .iter()
        .map(|&threads| {
            let runtime = Runtime::builder().threads(threads).build();
            for program in &workloads() {
                let inputs = bohrium_repro::testing::input_tensor(program, 0, 42);
                let reg = bohrium_repro::ir::Reg(0);
                let read = program
                    .reg_by_name("y")
                    .or(program.reg_by_name("s"))
                    .unwrap();
                for _ in 0..3 {
                    runtime
                        .eval(program, &[(reg, inputs.clone())], read)
                        .unwrap();
                }
            }
            runtime
                .profile(usize::MAX)
                .into_iter()
                .map(|p| p.deterministic_key())
                .collect::<Vec<_>>()
        })
        .collect();

    let (first, rest) = keys_per_count.split_first().unwrap();
    assert_eq!(first.len(), workloads().len(), "one profile per digest");
    for (i, other) in rest.iter().enumerate() {
        assert_eq!(
            first,
            other,
            "profile counters diverged between {} and {} VM threads",
            counts[0],
            counts[i + 1]
        );
    }
}
