//! Tier-equivalence property suite (DESIGN.md §14).
//!
//! Tiered, profile-guided re-optimisation is an *internal* policy change:
//! every digest's observable behaviour must be independent of which tier
//! built the plan that served it. For random verified programs this suite
//! pins, across Naive and Fusing engines and VM thread counts {1, 2, 4}:
//!
//! * **bit-for-bit value equivalence** (i64 dtype, so "equal" needs no
//!   tolerance) between tier-0 plans, tier-2 plans, a forced mid-stream
//!   promotion, and a non-tiered always-max reference runtime;
//! * an **identical tier lifecycle** on every engine/thread combination
//!   (the promotion policy consumes deterministic hit counts, never
//!   wall clocks);
//! * **identical analytic `ExecStats`** across thread counts for the same
//!   engine and tier (sharding parallelises work, it never changes what
//!   work is done);
//! * the tier counters themselves: one tier-0 build, one promotion, one
//!   verification per tier compile.
//!
//! `PROPTEST_CASES` deepens the suite uniformly (nightly CI runs 2048).

use bohrium_repro::ir::parse_program;
use bohrium_repro::runtime::{Runtime, Tier};
use bohrium_repro::testing::test_threads;
use bohrium_repro::vm::{Engine, ExecStats};
use proptest::prelude::*;

/// Evals per tiered runtime. With `PROMOTE_AFTER = 3` the lifecycle is
/// [T0, T0, T0, T2, T2]: hits 1–3 are recorded by evals 1–3, so eval 4's
/// prepare crosses the threshold and promotes synchronously — a forced
/// mid-stream promotion in every single case.
const EVALS: usize = 5;
const PROMOTE_AFTER: u64 = 3;

/// Random element-wise i64 programs over three registers, folded into
/// `r0` at the end so one synced read observes every register's state.
fn arb_program(max_len: usize) -> impl Strategy<Value = String> {
    let ops = prop_oneof![
        Just("BH_ADD"),
        Just("BH_SUBTRACT"),
        Just("BH_MULTIPLY"),
        Just("BH_MAXIMUM"),
        Just("BH_MINIMUM"),
    ];
    let operand = prop_oneof![
        Just("r0".to_owned()),
        Just("r1".to_owned()),
        Just("r2".to_owned()),
        (0i64..4).prop_map(|c| c.to_string()),
    ];
    let instr = (ops, 0usize..3, operand.clone(), operand)
        .prop_map(|(op, out, a, b)| format!("{op} r{out} {a} {b}"));
    proptest::collection::vec(instr, 1..max_len).prop_map(move |body| {
        let mut text = String::from(
            ".base r0 i64[16]\n.base r1 i64[16]\n.base r2 i64[16]\n\
             BH_IDENTITY r0 1\nBH_IDENTITY r1 2\nBH_IDENTITY r2 3\n",
        );
        for line in body {
            text.push_str(&line);
            text.push('\n');
        }
        text.push_str("BH_ADD r0 r0 r1\nBH_ADD r0 r0 r2\nBH_SYNC r0\n");
        text
    })
}

/// The engine × thread-count matrix. Thread counts honour the CI knob
/// (`BH_VM_TEST_THREADS`) on top of the fixed {1, 2, 4}.
fn combos() -> Vec<(Engine, usize)> {
    let mut threads = vec![1usize, 2, 4, test_threads()];
    threads.sort_unstable();
    threads.dedup();
    let mut combos = Vec::new();
    for engine in [Engine::Naive, Engine::Fusing { block: 64 }] {
        for &t in &threads {
            combos.push((engine, t));
        }
    }
    combos
}

/// The thread-count-invariant subset of [`ExecStats`]: everything except
/// the shard counts, which legitimately scale with workers.
fn analytic(exec: &ExecStats) -> [u64; 8] {
    [
        exec.instructions,
        exec.kernels,
        exec.fused_groups,
        exec.fused_reductions,
        exec.elements_written,
        exec.bytes_read,
        exec.bytes_written,
        exec.flops,
    ]
}

/// What one engine/thread combo observed over [`EVALS`] evaluations of a
/// tiered runtime.
struct CombRun {
    engine: Engine,
    threads: usize,
    values: Vec<bohrium_repro::tensor::Tensor>,
    tiers: Vec<Tier>,
    analytics: Vec<[u64; 8]>,
}

fn run_tiered(engine: Engine, threads: usize, text: &str) -> CombRun {
    let program = parse_program(text).expect("generated text parses");
    let reg = program.reg_by_name("r0").unwrap();
    let rt = Runtime::builder()
        .tiered(true)
        .promote_after(PROMOTE_AFTER)
        .engine(engine)
        .threads(threads)
        .build();
    let mut values = Vec::new();
    let mut tiers = Vec::new();
    let mut analytics = Vec::new();
    for _ in 0..EVALS {
        let (v, o) = rt.eval(&program, &[], reg).expect("verified program runs");
        values.push(v);
        tiers.push(o.plan.tier);
        analytics.push(analytic(&o.exec));
    }
    let stats = rt.stats();
    assert_eq!(stats.cache_misses, 1, "one tier-0 compile: {stats}");
    assert_eq!(stats.tiers.tier0_builds, 1, "{stats}");
    assert_eq!(stats.tiers.promotions, 1, "{stats}");
    assert_eq!(stats.tiers.failed_promotions, 0, "{stats}");
    assert_eq!(
        stats.verifications, 2,
        "once per tier compile, never per eval: {stats}"
    );
    CombRun {
        engine,
        threads,
        values,
        tiers,
        analytics,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The headline property: tier-0 output ≡ tier-2 output ≡ the
    // non-tiered always-max reference, bit for bit, on every engine and
    // thread count — including across the forced mid-stream promotion.
    #[test]
    fn tiers_are_observationally_equivalent(text in arb_program(12)) {
        let program = parse_program(&text).expect("generated text parses");
        let reg = program.reg_by_name("r0").unwrap();
        // Always-max reference: default options, no tiering.
        let reference = {
            let rt = Runtime::builder().build();
            let (v, o) = rt.eval(&program, &[], reg).expect("runs");
            prop_assert_eq!(o.plan.tier, Tier::Tier2);
            v
        };

        let runs: Vec<CombRun> = combos()
            .into_iter()
            .map(|(engine, threads)| run_tiered(engine, threads, &text))
            .collect();

        let expected_tiers = [Tier::Tier0, Tier::Tier0, Tier::Tier0, Tier::Tier2, Tier::Tier2];
        for run in &runs {
            // Tier-0 evals, the promotion eval and post-promotion evals
            // all equal the always-max reference, bit for bit.
            for (i, v) in run.values.iter().enumerate() {
                prop_assert_eq!(
                    v, &reference,
                    "eval {} ({:?} on {:?}×{}) diverged from the always-max reference",
                    i, run.tiers[i], run.engine, run.threads
                );
            }
            // The lifecycle is identical on every combo: promotion is
            // driven by deterministic hit counts, not timing.
            prop_assert_eq!(
                &run.tiers[..], &expected_tiers[..],
                "lifecycle drifted on {:?}×{}", run.engine, run.threads
            );
        }

        // Analytic exec counters are thread-count invariant per engine:
        // compare each combo against the 1-thread run of its engine,
        // eval by eval (same tier at the same index, per the lifecycle).
        for run in &runs {
            let base = runs
                .iter()
                .find(|r| r.engine == run.engine && r.threads == 1)
                .unwrap();
            prop_assert_eq!(
                &run.analytics, &base.analytics,
                "analytic ExecStats drifted between {}-thread and 1-thread {:?}",
                run.threads, run.engine
            );
        }
    }
}
