//! Soundness tests for the static plan auditor (`bh_ir::check_equiv`,
//! DESIGN.md §15), from both directions:
//!
//! * **No false rejections on real plans** — every program the standard
//!   pipeline produces (any level, fast or strict math) must audit clean
//!   against its source, or the runtime would silently serve unoptimised
//!   plans.
//! * **No false acceptances on broken plans** — a corpus of hand-built
//!   mutants (swapped non-commutative operands, dropped instructions,
//!   retargeted writes, changed constants, effect reorders, …) must each
//!   be caught with its stable A-code, and together the corpus exercises
//!   every code in [`EquivCode::ALL`].
//!
//! Plus the runtime-level contract: with [`RuntimeBuilder::audit`] on,
//! audits run once per plan compile — `cache_misses + promotions` — and
//! never on the cached eval path.

use bohrium_repro::ir::{check_equiv, parse_program, EquivCode, EquivOptions, Opcode, Program};
use bohrium_repro::opt::{AuditMode, OptLevel, OptOptions, Optimizer, RewriteCtx, RewriteRule};
use bohrium_repro::runtime::Runtime;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy mirroring `tests/equivalence.rs`: random element-wise chains
/// over three same-shape registers, as text.
fn arb_program(dtype: &'static str, max_len: usize) -> impl Strategy<Value = String> {
    let ops = prop_oneof![
        Just("BH_ADD"),
        Just("BH_SUBTRACT"),
        Just("BH_MULTIPLY"),
        Just("BH_MAXIMUM"),
        Just("BH_MINIMUM"),
    ];
    let operand = prop_oneof![
        Just("r0".to_owned()),
        Just("r1".to_owned()),
        Just("r2".to_owned()),
        (0i64..4).prop_map(|c| c.to_string()),
    ];
    let instr = (ops, 0usize..3, operand.clone(), operand)
        .prop_map(|(op, out, a, b)| format!("{op} r{out} {a} {b}"));
    proptest::collection::vec(instr, 1..max_len).prop_map(move |body| {
        let mut text = format!(
            ".base r0 {dtype}[16] input\n.base r1 {dtype}[16]\n.base r2 {dtype}[16]\n\
             BH_IDENTITY r1 2\nBH_IDENTITY r2 3\n"
        );
        for line in body {
            text.push_str(&line);
            text.push('\n');
        }
        text.push_str("BH_SYNC r0\nBH_SYNC r1\nBH_SYNC r2\n");
        text
    })
}

/// The standard pipeline at every level × math policy must audit clean
/// under the matching [`EquivOptions`].
fn assert_audits_clean(text: &str) {
    let reference: Program = parse_program(text).expect("generated text parses");
    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        for strict in [false, true] {
            let mut options = OptOptions::level(level);
            if strict {
                options.ctx.fast_math = false;
            }
            let mut transformed = reference.clone();
            Optimizer::new(options.clone()).run(&mut transformed);
            if let Err(errors) = check_equiv(&reference, &transformed, &options.equiv_options()) {
                panic!(
                    "level {level:?} strict={strict} rejected a standard-pipeline plan:\n\
                     {errors:?}\n--- before ---\n{reference}\n--- after ---\n{transformed}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn integer_pipeline_plans_audit_clean(text in arb_program("i64", 12)) {
        assert_audits_clean(&text);
    }

    #[test]
    fn float_pipeline_plans_audit_clean(text in arb_program("f64", 12)) {
        assert_audits_clean(&text);
    }

    #[test]
    fn bool_pipeline_plans_audit_clean(text in arb_program("bool", 8)) {
        assert_audits_clean(&text);
    }
}

// ---------------------------------------------------------------------------
// Mutant corpus: every kind of unsound transformation is caught, with the
// documented stable code.
// ---------------------------------------------------------------------------

/// The corpus base: a non-commutative op feeding a product, two syncs in
/// a fixed order, and a release effect.
const BASE: &str = "\
.base x f64[8] input
.base t f64[8]
.base y f64[8]
BH_SUBTRACT t x 3
BH_MULTIPLY y t x
BH_SYNC t
BH_SYNC y
BH_FREE t
";

/// Parse `BASE`, apply `mutate`, and return the codes `check_equiv`
/// reports (empty = falsely accepted).
fn codes_after(mutate: impl FnOnce(&mut Program)) -> Vec<EquivCode> {
    let before = parse_program(BASE).unwrap();
    let mut after = before.clone();
    mutate(&mut after);
    match check_equiv(&before, &after, &EquivOptions::default()) {
        Ok(_) => Vec::new(),
        Err(errors) => errors.into_iter().map(|e| e.code).collect(),
    }
}

#[test]
fn mutant_corpus_catches_every_code() {
    let mut exercised: BTreeSet<EquivCode> = BTreeSet::new();
    let mut run = |label: &str, expect: EquivCode, mutate: &mut dyn FnMut(&mut Program)| {
        let before = parse_program(BASE).unwrap();
        let mut after = before.clone();
        mutate(&mut after);
        let codes = match check_equiv(&before, &after, &EquivOptions::default()) {
            Ok(_) => panic!("mutant `{label}` was falsely accepted:\n{after}"),
            Err(errors) => errors.into_iter().map(|e| e.code).collect::<Vec<_>>(),
        };
        assert!(
            codes.contains(&expect),
            "mutant `{label}` expected {expect}, got {codes:?}"
        );
        exercised.extend(codes);
    };

    // A100 — swapped non-commutative operands: t = 3 - x instead of x - 3.
    run(
        "swapped-subtract-operands",
        EquivCode::ValueMismatch,
        &mut |p| {
            p.instrs_mut()[0].operands.swap(1, 2);
        },
    );
    // A100 — changed constant.
    run("changed-constant", EquivCode::ValueMismatch, &mut |p| {
        p.instrs_mut()[0].operands[2] = bohrium_repro::tensor::Scalar::F64(4.0).into();
    });
    // A100 — dropped instruction: y is synced still holding its zero fill.
    run("dropped-multiply", EquivCode::ValueMismatch, &mut |p| {
        p.instrs_mut()[1] = bohrium_repro::ir::Instruction::noop();
        p.compact();
    });
    // A100 — retargeted write: the multiply lands in t instead of y.
    run("retargeted-output", EquivCode::ValueMismatch, &mut |p| {
        let t = p.reg_by_name("t").unwrap();
        let out = p.instrs_mut()[1].operands[0]
            .as_view()
            .cloned()
            .map(|mut v| {
                v.reg = t;
                v
            })
            .unwrap();
        p.instrs_mut()[1].operands[0] = out.into();
    });
    // A101 — a sync dropped: t is no longer observable.
    run("dropped-sync", EquivCode::MissingObservable, &mut |p| {
        p.instrs_mut()[2] = bohrium_repro::ir::Instruction::noop();
        p.compact();
    });
    // A102 — a sync added: x becomes observable out of nowhere.
    run("added-sync", EquivCode::ExtraObservable, &mut |p| {
        let x = p.reg_by_name("x").unwrap();
        let sync = bohrium_repro::ir::Instruction {
            op: Opcode::Sync,
            operands: vec![bohrium_repro::ir::ViewRef {
                reg: x,
                slices: None,
            }
            .into()],
        };
        p.instrs_mut().push(sync);
    });
    // A300 — sync effects reordered (same per-register streams).
    run("reordered-syncs", EquivCode::EffectReorder, &mut |p| {
        p.instrs_mut().swap(2, 3);
    });
    // A301 — the release effect dropped.
    run("dropped-free", EquivCode::FreeDivergence, &mut |p| {
        p.instrs_mut()[4] = bohrium_repro::ir::Instruction::noop();
        p.compact();
    });
    // A302 — a malformed operand pattern: the auditor refuses to model an
    // elementwise op whose output slot holds a constant.
    run("malformed-output", EquivCode::Unsupported, &mut |p| {
        p.instrs_mut()[1].operands[0] = bohrium_repro::tensor::Scalar::F64(0.0).into();
    });
    // A200/A201 — declaration divergence needs its own before/after pair
    // (mutating a parsed decl in place).
    {
        let before = parse_program(BASE).unwrap();
        let reshaped = parse_program(&BASE.replace(".base y f64[8]", ".base y f64[4]")).unwrap();
        let retyped = parse_program(&BASE.replace(".base y f64[8]", ".base y f32[8]")).unwrap();
        let shape_codes: Vec<_> = check_equiv(&before, &reshaped, &EquivOptions::default())
            .unwrap_err()
            .into_iter()
            .map(|e| e.code)
            .collect();
        assert!(
            shape_codes.contains(&EquivCode::ShapeDivergence),
            "{shape_codes:?}"
        );
        exercised.extend(shape_codes);
        let dtype_codes: Vec<_> = check_equiv(&before, &retyped, &EquivOptions::default())
            .unwrap_err()
            .into_iter()
            .map(|e| e.code)
            .collect();
        assert!(
            dtype_codes.contains(&EquivCode::DTypeDivergence),
            "{dtype_codes:?}"
        );
        exercised.extend(dtype_codes);
    }

    // Completeness: the corpus exercises the full stable-code catalogue.
    let all: BTreeSet<EquivCode> = EquivCode::ALL.into_iter().collect();
    assert_eq!(
        exercised, all,
        "mutant corpus no longer covers every EquivCode"
    );
}

#[test]
fn identity_mutation_is_not_flagged() {
    // Control for the corpus: the no-op mutation audits clean.
    assert!(codes_after(|_| {}).is_empty());
}

// ---------------------------------------------------------------------------
// Per-rule audit: an unsound rule in the schedule is rolled back and the
// pipeline continues.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SwapsSubtractOperands;

impl RewriteRule for SwapsSubtractOperands {
    fn name(&self) -> &'static str {
        "swaps-subtract-operands"
    }

    fn apply(&self, program: &mut Program, _ctx: &RewriteCtx) -> usize {
        let mut n = 0;
        for instr in program.instrs_mut() {
            if instr.op == Opcode::Subtract {
                instr.operands.swap(1, 2);
                n += 1;
            }
        }
        n
    }
}

#[test]
fn per_rule_audit_rolls_back_the_unsound_rule() {
    let before = parse_program(BASE).unwrap();
    let mut program = before.clone();
    let options = OptOptions::default().audit(AuditMode::PerRule);
    let report =
        Optimizer::with_rules(options, vec![Box::new(SwapsSubtractOperands)]).run(&mut program);
    assert!(report.audit_rollbacks >= 1, "{report}");
    // The rolled-back program still proves equivalent to its source.
    check_equiv(&before, &program, &EquivOptions::default())
        .expect("rollback must restore an equivalent program");
}

// ---------------------------------------------------------------------------
// Runtime contract: one audit per plan compile, zero on the eval path.
// ---------------------------------------------------------------------------

#[test]
fn runtime_audit_invariant_holds_across_tiers() {
    let rt = Runtime::builder()
        .audit(true)
        .tiered(true)
        .promote_after(2)
        .build();
    let p = parse_program(BASE).unwrap();
    let y = p.reg_by_name("y").unwrap();
    let input = bohrium_repro::tensor::Tensor::from_vec(vec![5.0f64; 8]);
    let x = p.reg_by_name("x").unwrap();
    for _ in 0..8 {
        let (v, _) = rt.eval(&p, &[(x, input.clone())], y).unwrap();
        assert_eq!(v.to_f64_vec(), vec![10.0; 8]);
    }
    let stats = rt.stats();
    // One audit per compile: the tier-0 build plus the promotion.
    assert_eq!(
        stats.audits.total(),
        stats.cache_misses + stats.tiers.promotions
    );
    assert_eq!(stats.audits.total(), 2);
    assert_eq!(stats.audits.failed, 0);
    assert_eq!(stats.audits.rolled_back, 0);
    // Eight evals, two audits: the cached path never audits.
    assert_eq!(stats.evals, 8);
}

#[test]
fn prepared_hot_path_never_audits() {
    let rt = Runtime::builder().audit(true).build();
    let p = parse_program(BASE).unwrap();
    let x = p.reg_by_name("x").unwrap();
    let y = p.reg_by_name("y").unwrap();
    let (plan, hit) = rt.prepare(&p).unwrap();
    assert!(!hit);
    assert_eq!(rt.stats().audits.total(), 1);
    let mut vm = rt.lease_vm();
    for i in 0..5 {
        let input = bohrium_repro::tensor::Tensor::from_vec(vec![i as f64; 8]);
        rt.eval_prepared(&plan, &mut vm, &[(x, input)], Some(y), true)
            .unwrap();
    }
    // Five prepared evals later the counter has not moved.
    assert_eq!(rt.stats().audits.total(), 1);
}
