//! Soundness of the admission-time byte-code verifier (DESIGN.md §12).
//!
//! Two halves:
//!
//! 1. **Completeness of the rule catalogue** — a malformed-program corpus
//!    with one witness program per [`VerifyCode`], asserting every rule
//!    fires with its specific stable code (the codes clients switch on).
//! 2. **Soundness of the witness** — property tests generating random
//!    byte-code: any program the verifier accepts must execute on both
//!    engines and at thread counts {1, 4} without `VmError::Invalid`,
//!    without panicking, and with engine-independent results. This is the
//!    exact property that justifies `Vm::run_verified` eliding per-eval
//!    checks.

use bohrium_repro::ir::{
    parse_program, verify, Instruction, Opcode, Operand, Program, ProgramBuilder, VerifyCode,
    ViewRef,
};
use bohrium_repro::tensor::{DType, Scalar, Shape};
use bohrium_repro::testing::run_synced_threads;
use bohrium_repro::vm::{Engine, VmError};
use proptest::prelude::*;

/// One witness program per verifier rule. Most are expressible in the
/// textual format; arity and missing-output violations can only be built
/// programmatically (the parser would reject the text first).
fn corpus() -> Vec<(VerifyCode, Program)> {
    let parsed = |text: &str| parse_program(text).unwrap();
    let bad_arity = {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(4));
        let a = b.reg("a");
        b.identity_const(a, Scalar::F64(0.0));
        let mut p = b.build();
        p.push(Instruction::unary(
            Opcode::Add,
            ViewRef::full(a),
            Scalar::F64(1.0),
        ));
        p
    };
    let output_not_view = {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(4));
        let a = b.reg("a");
        b.identity_const(a, Scalar::F64(0.0));
        let mut p = b.build();
        p.push(Instruction::new(
            Opcode::Add,
            vec![
                Operand::Const(Scalar::F64(0.0)),
                Operand::full(a),
                Operand::Const(Scalar::F64(1.0)),
            ],
        ));
        p
    };
    vec![
        (VerifyCode::BadArity, bad_arity),
        (VerifyCode::OutputNotView, output_not_view),
        (
            VerifyCode::NonViewOperand,
            parsed(".base s f64[3]\nBH_ADD_REDUCE s 1 1\nBH_SYNC s\n"),
        ),
        (
            VerifyCode::BadView,
            parsed(
                ".base a f64[4] input\n.base b f64[4]\n\
                 BH_IDENTITY b a[0:2:1,0:2:1]\nBH_SYNC b\n",
            ),
        ),
        (
            VerifyCode::ViewOutOfBounds,
            parsed(
                ".base a f64[4] input\n.base b f64[9]\n\
                 BH_IDENTITY b a[0:9:1]\nBH_SYNC b\n",
            ),
        ),
        (
            VerifyCode::ReadBeforeWrite,
            parsed("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n"),
        ),
        (
            VerifyCode::UseAfterFree,
            parsed(".base a f64[4] input\nBH_FREE a\nBH_SYNC a\n"),
        ),
        (
            VerifyCode::UnsupportedDType,
            parsed(".base x i32[4] input\n.base y i32[4]\nBH_SQRT y x\nBH_SYNC y\n"),
        ),
        (
            VerifyCode::InputDTypeMismatch,
            parsed(
                ".base x f64[4] input\n.base y i32[4] input\n.base z f64[4]\n\
                 BH_ADD z x y\nBH_SYNC z\n",
            ),
        ),
        (
            VerifyCode::OutputDTypeMismatch,
            parsed(".base x f64[4] input\n.base y f64[4]\nBH_GREATER y x x\nBH_SYNC y\n"),
        ),
        (
            VerifyCode::ReduceDTypeMismatch,
            parsed(
                ".base m f64[3,4] input\n.base s i32[3]\n\
                 BH_ADD_REDUCE s m 1\nBH_SYNC s\n",
            ),
        ),
        (
            VerifyCode::NonFloatOperand,
            parsed(
                ".base a i32[2,2] input\n.base b i32[2,2] input\n.base c i32[2,2]\n\
                 BH_MATMUL c a b\nBH_SYNC c\n",
            ),
        ),
        (
            VerifyCode::BadSeed,
            parsed(".base r f64[8]\nBH_RANDOM r 1.5\nBH_SYNC r\n"),
        ),
        (
            VerifyCode::BroadcastMismatch,
            parsed(".base x f64[4] input\n.base y f64[5]\nBH_IDENTITY y x\nBH_SYNC y\n"),
        ),
        (
            VerifyCode::ReduceShapeMismatch,
            parsed(
                ".base m f64[3,4] input\n.base s f64[4]\n\
                 BH_ADD_REDUCE s m 1\nBH_SYNC s\n",
            ),
        ),
        (
            VerifyCode::ScanShapeMismatch,
            parsed(
                ".base m f64[6] input\n.base c f64[5]\n\
                 BH_ADD_ACCUMULATE c m 0\nBH_SYNC c\n",
            ),
        ),
        (
            VerifyCode::BadAxis,
            parsed(
                ".base m f64[3,4] input\n.base s f64[3]\n\
                 BH_ADD_REDUCE s m 7\nBH_SYNC s\n",
            ),
        ),
        (
            VerifyCode::LinalgShapeMismatch,
            parsed(
                ".base a f64[2,3] input\n.base b f64[2,4] input\n.base c f64[2,4]\n\
                 BH_MATMUL c a b\nBH_SYNC c\n",
            ),
        ),
        (
            VerifyCode::AliasedOutput,
            parsed(".base a f64[4] input\nBH_ADD_ACCUMULATE a a[::-1] 0\nBH_SYNC a\n"),
        ),
    ]
}

#[test]
fn every_verify_code_has_a_firing_corpus_program() {
    let corpus = corpus();
    // One witness per code, no code forgotten when the catalogue grows.
    assert_eq!(corpus.len(), VerifyCode::ALL.len());
    for code in VerifyCode::ALL {
        assert_eq!(
            corpus.iter().filter(|(c, _)| *c == code).count(),
            1,
            "exactly one corpus program for {code}"
        );
    }
    for (code, program) in &corpus {
        let errors = verify(program).expect_err(&format!("{code} program must be rejected"));
        assert!(
            errors.iter().any(|e| e.code == *code),
            "{code} program reported {:?} instead\n{program}",
            errors.iter().map(|e| e.code).collect::<Vec<_>>()
        );
    }
}

#[test]
fn rejected_programs_fail_vm_run_with_the_same_codes() {
    // The VM front door (`Vm::run`) verifies and must surface the
    // structured findings, not execute malformed byte-code.
    for (code, program) in &corpus() {
        let mut vm = bohrium_repro::vm::Vm::new();
        match vm.run(program) {
            Err(VmError::Invalid(errors)) => {
                assert!(errors.iter().any(|e| e.code == *code), "{code}: {errors:?}");
            }
            other => panic!("{code} program must be Invalid, got {other:?}"),
        }
    }
}

/// Tiered-promotion soundness (DESIGN.md §14): a plan re-optimised at
/// full strength behind a hot digest must pass a fresh `bh_ir::verify`
/// pass *before* it is swapped live — the unchecked
/// `Vm::run_verified` hot path may only ever see re-verified plans.
/// Pinned two ways: the verification counter moves once per tier
/// compile (tier-0 build + promotion = 2), and the trace shows a
/// complete verify span strictly inside the promote span (i.e. before
/// the swap could land).
#[test]
fn promoted_plans_reverify_before_going_live() {
    use bohrium_repro::observe::{RingTraceSink, TracePhase, TraceSink};
    use bohrium_repro::runtime::{Runtime, Tier};
    use std::sync::Arc;

    let sink = RingTraceSink::shared(256);
    let rt = Runtime::builder()
        .tiered(true)
        .promote_after(1)
        .trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .build();
    let program =
        parse_program("BH_IDENTITY a0 [0:8:1] 0\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_SYNC a0\n")
            .unwrap();
    let reg = program.reg_by_name("a0").unwrap();
    let (v0, o0) = rt.eval(&program, &[], reg).unwrap();
    assert_eq!(o0.plan.tier, Tier::Tier0);
    let (v2, o2) = rt.eval(&program, &[], reg).unwrap();
    assert_eq!(
        o2.plan.tier,
        Tier::Tier2,
        "second eval crosses the threshold"
    );
    assert_eq!(v0, v2, "promotion is observationally equivalent");
    let stats = rt.stats();
    assert_eq!(stats.verifications, 2, "once per tier compile: {stats}");
    assert_eq!(stats.tiers.promotions, 1);
    assert_eq!(stats.tiers.failed_promotions, 0);

    let events = sink.events();
    let pos = |stage: &str, phase: TracePhase| {
        events
            .iter()
            .position(|e| e.stage == stage && e.phase == phase)
            .unwrap_or_else(|| panic!("no {phase:?} event for {stage}"))
    };
    let promote_begin = pos("promote", TracePhase::Begin);
    let promote_end = pos("promote", TracePhase::End);
    assert!(promote_begin < promote_end);
    let verifies_inside_promote = events[promote_begin..promote_end]
        .iter()
        .filter(|e| e.stage == "verify")
        .count();
    assert_eq!(
        verifies_inside_promote, 2,
        "a full verify span (Begin + End) runs inside the promote span, before the swap"
    );
}

// ---------------------------------------------------------------------
// Property half: verified ⇒ executes everywhere, identically.
// ---------------------------------------------------------------------

/// Assemble a candidate program: `nregs` f64 vector bases of length `n`
/// (all but `r0` declared `input`), a body of elementwise instructions,
/// a final SYNC per register. A windowed instruction slices its output
/// `[lo : lo+len : 1]` and gives every view input its own window of the
/// *same* length — matched lengths keep broadcast legal while still
/// generating out-of-bounds windows (V104), overlapping in-place windows
/// (V500) and reads of the uninitialised `r0` (V200). The candidate may
/// be malformed in every way the generator allows: the property filters
/// through `verify` itself, so the verifier — not the generator — is the
/// arbiter of what reaches the VM.
#[allow(clippy::type_complexity)]
fn assemble(
    n: usize,
    nregs: usize,
    body: &[(
        u8,
        usize,
        Option<(i64, i64)>,
        Vec<(usize, i64, Option<i64>)>,
    )],
) -> String {
    let mut text = String::new();
    for r in 0..nregs {
        let kind = if r == 0 { "" } else { " input" };
        text.push_str(&format!(".base r{r} f64[{n}]{kind}\n"));
    }
    for (opsel, out, window, ins) in body {
        let op = match opsel % 4 {
            0 => "BH_ADD",
            1 => "BH_MULTIPLY",
            2 => "BH_SUBTRACT",
            _ => "BH_IDENTITY",
        };
        let arity = if *opsel % 4 == 3 { 1 } else { 2 };
        let mut line = match window {
            Some((lo, len)) => format!("{op} r{}[{lo}:{}:1]", out % 4, lo + len),
            None => format!("{op} r{}", out % 4),
        };
        for (reg, in_lo, konst) in ins.iter().take(arity) {
            line.push(' ');
            line.push_str(&match (konst, window) {
                (Some(c), _) => format!("{c}"),
                (None, Some((_, len))) => format!("r{}[{in_lo}:{}:1]", reg % 4, in_lo + len),
                (None, None) => format!("r{}", reg % 4),
            });
        }
        line.push('\n');
        text.push_str(&line);
    }
    for r in 0..nregs {
        text.push_str(&format!("BH_SYNC r{r}\n"));
    }
    text
}

/// Non-vacuity guard for the property below: a known-good assembled
/// candidate must make it through parse + verify to actual execution, so
/// the random property cannot silently degenerate into filtering
/// everything out.
#[test]
fn assembled_candidates_can_reach_execution() {
    let body = vec![
        (3u8, 0usize, None, vec![(0, 0, Some(2)), (0, 0, None)]),
        (0u8, 2usize, Some((1, 4)), vec![(0, 2, None), (1, 0, None)]),
    ];
    let text = assemble(6, 4, &body);
    let program = parse_program(&text).expect("candidate parses");
    verify(&program).expect("candidate verifies");
    run_synced_threads(&program, 7, Engine::Naive, 1).expect("candidate runs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn verified_programs_run_clean_on_every_engine_and_thread_count(
        n in 4usize..9,
        body in proptest::collection::vec(
            (
                0u8..255,
                0usize..4,
                // Window origins/lengths sized so most candidates stay in
                // bounds (executed) while the tail goes out of bounds
                // (exercising the V104 filter).
                proptest::option::of((0i64..4, 1i64..5)),
                proptest::collection::vec(
                    (0usize..4, 0i64..5, proptest::option::of(1i64..5)),
                    2,
                ),
            ),
            1..6,
        ),
        seed in 0u64..u64::MAX,
    ) {
        let text = assemble(n, 4, &body);
        // Candidates that fail to parse are outside the verifier's
        // contract; candidates the verifier rejects never reach
        // execution. (No early `return`s: the vendored proptest macro
        // inlines the body into one test fn, so `return` would abort the
        // whole case loop, not just the current case.)
        if let Ok(program) = parse_program(&text) {
            if verify(&program).is_ok() {
                // Accepted by the verifier: must run clean everywhere.
                let mut results = Vec::new();
                for engine in [Engine::Naive, Engine::Fusing { block: 4 }] {
                    for threads in [1usize, 4] {
                        match run_synced_threads(&program, seed, engine, threads) {
                            Ok(synced) => results.push(synced),
                            Err(VmError::Invalid(errors)) => panic!(
                                "verified program re-flagged Invalid ({errors:?}) \
                                 on {engine:?} x{threads}:\n{program}"
                            ),
                            Err(other) => panic!(
                                "verified program failed ({other}) on \
                                 {engine:?} x{threads}:\n{program}"
                            ),
                        }
                    }
                }
                // Engine- and thread-count-independent results
                // (elementwise body, so equality is exact).
                for other in &results[1..] {
                    prop_assert_eq!(&results[0], other);
                }
            }
        }
    }
}
