//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free locking
//! API (`lock()` returns the guard directly; a poisoned lock is recovered
//! rather than propagated, matching parking_lot's no-poisoning semantics).
//! Only the types this workspace uses are provided.

#![warn(missing_docs)]

use std::fmt;

/// A mutual-exclusion lock with `parking_lot`'s `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, a
    /// poisoned lock (a panic while held) is recovered, not an error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
