//! Offline stand-in for `criterion`.
//!
//! Implements the slice of criterion's API the workspace benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_with_input, bench_function, finish}`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros — with a plain
//! median-of-samples timer instead of criterion's statistical machinery.
//! `cargo bench --no-run` type-checks the real bench shapes; `cargo bench`
//! prints one median line per benchmark.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 10, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkGroup").finish_non_exhaustive()
    }
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Finish the group (reporting happens as benches run).
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        medians: Vec::new(),
    };
    f(&mut bencher);
    let median = bencher.medians.last().copied().unwrap_or(f64::NAN);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:.1} Melem/s", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if median > 0.0 => {
            format!("  {:.1} MB/s", n as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!("  {label}: median {:.3} ms{rate}", median * 1e3);
}

/// Per-iteration work units, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration (binary units in criterion proper).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units).
    BytesDecimal(u64),
}

/// A benchmark identifier: function label plus parameter display.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    medians: Vec<f64>,
}

impl Bencher {
    /// Time `f`, recording the median of this bencher's sample count.
    /// One warm-up call runs untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        self.medians.push(times[times.len() / 2]);
    }
}

/// Opaque value sink preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10)).sample_size(3);
        let input = 21u64;
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * 2
            })
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
