//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest's API the workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], tuple and
//! range strategies, a minimal `[class]{lo,hi}` regex string strategy,
//! [`collection::vec`], [`option::of`], the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design: cases are generated from a seed
//! derived from the test name (deterministic across runs), failures panic
//! immediately, and there is **no shrinking** — a failing case prints its
//! inputs via the standard assertion message only. The `PROPTEST_CASES`
//! environment variable overrides the per-property case count (including
//! explicit `with_cases` configs, unlike upstream), which is how the
//! nightly CI job deepens every suite to 2048 cases uniformly.

#![warn(missing_docs)]

/// Deterministic RNG and per-test configuration.
pub mod test_runner {
    /// Run configuration (subset of proptest's `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// The case count actually run: the `PROPTEST_CASES` environment
        /// variable when set to a positive integer, else the configured
        /// count. Unlike upstream (where the env var only feeds
        /// `Config::default()`), the override also applies on top of
        /// `with_cases` so a scheduled deep run (e.g. nightly CI with
        /// `PROPTEST_CASES=2048`) deepens every suite uniformly.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(self.cases)
        }
    }

    /// Deterministic generator (SplitMix64) seeded from the test name, so
    /// every run of a property replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }
    }
}

/// The strategy abstraction and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating random values (subset of proptest's
    /// `Strategy`; generation only, no value trees or shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Object-safe projection of [`Strategy`], used by [`Union`].
    pub trait DynStrategy<T> {
        /// Generate one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<Rc<dyn DynStrategy<T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<Rc<dyn DynStrategy<T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate_dyn(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);

    /// String strategy from a minimal regex: `[class]{lo,hi}` — one
    /// character class (literals, `a-b` ranges, `\n`/`\t`/`\r`/`\\`
    /// escapes) with a repetition count. Any other pattern generates
    /// itself literally. Covers the patterns this workspace uses; not a
    /// general regex engine.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((alphabet, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_owned(),
            }
        }
    }

    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = counts.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        if hi < lo {
            return None;
        }
        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        let unescape = |c: char| match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        };
        while let Some(c) = chars.next() {
            let c = if c == '\\' {
                unescape(chars.next()?)
            } else {
                c
            };
            if chars.peek() == Some(&'-') && chars.clone().nth(1).is_some() {
                chars.next();
                let end = chars.next()?;
                let end = if end == '\\' {
                    unescape(chars.next()?)
                } else {
                    end
                };
                for v in (c as u32)..=(end as u32) {
                    alphabet.extend(char::from_u32(v));
                }
            } else {
                alphabet.push(c);
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact count or a half-open
    /// range (subset of proptest's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s (3-in-4 `Some`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `#[test] fn name(arg in strategy, …)` runs
/// its body over `cases` generated inputs (no shrinking on failure).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..cfg.effective_cases() {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        // Callers conventionally parenthesise range options, e.g.
        // `prop_oneof![(-5i64..0), (1i64..6)]`; don't lint that.
        #[allow(unused_parens)]
        let options = vec![
            $( ::std::rc::Rc::new($strat) as ::std::rc::Rc<dyn $crate::strategy::DynStrategy<_>> ),+
        ];
        $crate::strategy::Union::new(options)
    }};
}

/// Property assertion (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("t");
        let strat = (0i64..4, 1usize..3);
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&strat, &mut rng);
            assert!((0..4).contains(&a));
            assert!((1..3).contains(&b));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::from_name("t2");
        let s = prop_oneof![Just("x".to_owned()), (0i64..4).prop_map(|c| c.to_string()),];
        for _ in 0..50 {
            let v: String = Strategy::generate(&s, &mut rng);
            assert!(v == "x" || v.parse::<i64>().is_ok(), "{v}");
        }
    }

    #[test]
    fn vec_and_option_strategies() {
        let mut rng = TestRng::from_name("t3");
        let vs = crate::collection::vec(0i64..10, 1..5);
        let os = crate::option::of(0i64..10);
        let mut saw_none = false;
        for _ in 0..100 {
            let v = Strategy::generate(&vs, &mut rng);
            assert!((1..5).contains(&v.len()));
            saw_none |= Strategy::generate(&os, &mut rng).is_none();
        }
        assert!(saw_none);
    }

    #[test]
    fn regex_class_strategy() {
        let mut rng = TestRng::from_name("t4");
        let pat = "[ -~\n]{0,160}";
        for _ in 0..50 {
            let s = Strategy::generate(&pat, &mut rng);
            assert!(s.len() <= 160);
            for c in s.chars() {
                assert!(c == '\n' || (' '..='~').contains(&c), "{c:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0i64..10, b in 0i64..10) {
            prop_assert!(a + b < 20);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
