//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of `rand`'s API it actually uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_bool`] /
//! [`Rng::gen_range`] over `f64`/integer ranges. The generator is
//! SplitMix64 — deterministic per seed, which is the only property the
//! stack relies on (seeded, reproducible tensors). The stream differs from
//! upstream `StdRng`; nothing in this workspace depends on the exact
//! stream, only on determinism.

#![warn(missing_docs)]

use std::ops::Range;

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A uniform draw from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges a generator can sample from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for
    /// `rand::rngs::StdRng`; same-type determinism only.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 of
            // state, and trivially seedable — ideal for a vendored stand-in.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(1usize..10);
            assert!((1..10).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
