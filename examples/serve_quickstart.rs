//! Serving quickstart: an adaptive multi-tenant batching server over
//! one runtime.
//!
//! Three tenants fire concurrent requests; two of them submit the *same*
//! program structure, so their requests batch under one plan on one
//! pinned VM while the third tenant is still served fairly in between —
//! at twice the scheduling weight, with the batch limit adapting to a
//! latency SLO instead of being hand-tuned, and completions delivered
//! through the non-blocking ticket surface (`submit_many` + `on_done`).
//!
//! Run with: `cargo run --release --example serve_quickstart`

use bohrium_repro::ir::parse_program;
use bohrium_repro::runtime::Runtime;
use bohrium_repro::serve::{ProgramHandle, Request, Server};
use bohrium_repro::tensor::Tensor;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runtime = Runtime::builder().build_shared();
    let server = Arc::new(
        Server::builder(Arc::clone(&runtime))
            .workers(2)
            .queue_capacity(256)
            // Adaptive policy: grow batches toward 32 while the p95
            // turnaround holds 5ms, halve them when it slips.
            .max_batch(32)
            .adaptive_batch(Duration::from_millis(5))
            // tenant-2's niche endpoint gets twice the default share.
            .tenant_weight("tenant-2", 2)
            .build(),
    );

    // The popular endpoint: `y = x*x + 1` — two tenants hit it.
    let popular = ProgramHandle::new(parse_program(
        ".base x f64[6] input\n.base y f64[6]\n\
         BH_MULTIPLY y x x\nBH_ADD y y 1\nBH_SYNC y\n",
    )?);
    // A niche endpoint only the third tenant uses.
    let niche = ProgramHandle::new(parse_program(
        "BH_IDENTITY a [0:6:1] 2\nBH_ADD a a 2\nBH_ADD a a 2\nBH_SYNC a\n",
    )?);

    let x = popular.program().reg_by_name("x").unwrap();
    let y = popular.program().reg_by_name("y").unwrap();
    let a = niche.program().reg_by_name("a").unwrap();

    // One burst of every tenant's traffic, enqueued under a single lock
    // acquisition; no thread blocks per request — each ticket hands its
    // response to a callback, multiplexed over one channel.
    let requests = (0..12).map(|i| {
        let tenant = i % 3;
        if tenant < 2 {
            let input = Tensor::from_vec(vec![(tenant + i / 3) as f64; 6]);
            Request::with_handle(format!("tenant-{tenant}"), &popular)
                .bind(x, input)
                .read(y)
        } else {
            Request::with_handle("tenant-2", &niche).read(a)
        }
    });
    let (tx, rx) = mpsc::channel();
    let mut accepted = 0usize;
    for (i, outcome) in server.submit_many(requests).into_iter().enumerate() {
        let ticket = outcome.map_err(|rejected| rejected.reason)?;
        accepted += 1;
        let tx = tx.clone();
        ticket.on_done(move |result| {
            tx.send((i, result)).expect("receiver outlives the burst");
        });
    }

    for _ in 0..accepted {
        let (i, result) = rx.recv()?;
        let response = result?;
        let value = response.value.expect("read requested");
        println!(
            "tenant-{} req {i:>2}: {:?} (batch of {}, cache hit: {}, turnaround {:?})",
            i % 3,
            &value.to_f64_vec()[..2],
            response.batch_size,
            response.outcome.cache_hit,
            response.turnaround,
        );
    }

    server.shutdown();
    let report = server.report();
    println!("\n{report}");
    for (tenant, served) in report.serve.tenants.iter() {
        println!(
            "{tenant}: {served} requests ({:.0}%)",
            report.serve.tenants.share(tenant) * 100.0
        );
    }
    Ok(())
}
