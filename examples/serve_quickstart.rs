//! Serving quickstart: a multi-tenant batching server over one runtime.
//!
//! Three tenants fire concurrent requests; two of them submit the *same*
//! program structure, so their requests batch under one plan on one
//! pinned VM while the third tenant is still served fairly in between.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use bohrium_repro::ir::parse_program;
use bohrium_repro::runtime::Runtime;
use bohrium_repro::serve::{ProgramHandle, Request, Server};
use bohrium_repro::tensor::Tensor;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runtime = Runtime::builder().build_shared();
    let server = Arc::new(
        Server::builder(Arc::clone(&runtime))
            .workers(2)
            .queue_capacity(256)
            .max_batch(8)
            .build(),
    );

    // The popular endpoint: `y = x*x + 1` — two tenants hit it.
    let popular = ProgramHandle::new(parse_program(
        ".base x f64[6] input\n.base y f64[6]\n\
         BH_MULTIPLY y x x\nBH_ADD y y 1\nBH_SYNC y\n",
    )?);
    // A niche endpoint only the third tenant uses.
    let niche = ProgramHandle::new(parse_program(
        "BH_IDENTITY a [0:6:1] 2\nBH_ADD a a 2\nBH_ADD a a 2\nBH_SYNC a\n",
    )?);

    let x = popular.program().reg_by_name("x").unwrap();
    let y = popular.program().reg_by_name("y").unwrap();
    let a = niche.program().reg_by_name("a").unwrap();

    let clients: Vec<_> = (0..3)
        .map(|tenant| {
            let server = Arc::clone(&server);
            let popular = popular.clone();
            let niche = niche.clone();
            std::thread::spawn(move || {
                for i in 0..4 {
                    let request = if tenant < 2 {
                        let input = Tensor::from_vec(vec![(tenant + i) as f64; 6]);
                        Request::with_handle(format!("tenant-{tenant}"), &popular)
                            .bind(x, input)
                            .read(y)
                    } else {
                        Request::with_handle("tenant-2", &niche).read(a)
                    };
                    let response = server.submit_wait(request).expect("request serves");
                    let value = response.value.expect("read requested");
                    println!(
                        "tenant-{tenant} req {i}: {:?} (batch of {}, cache hit: {})",
                        &value.to_f64_vec()[..2],
                        response.batch_size,
                        response.outcome.cache_hit,
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    println!("\n{}", server.report());
    server.shutdown();
    Ok(())
}
