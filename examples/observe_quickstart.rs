//! Observability quickstart: profile, trace and export one serving run.
//!
//! A runtime (profiling is on by default) and a server share a single
//! flight-recorder trace sink. After a burst of two-tenant traffic the
//! example prints the three observability surfaces:
//!
//! 1. the per-digest profile — hottest programs with per-stage mean
//!    latencies and per-op-code instruction totals,
//! 2. the flight-recorder dump — the interleaved queue/batch spans from
//!    the server and optimise/verify/bind/execute/read-back spans from
//!    the runtime,
//! 3. the exporter — the same counters rendered as Prometheus text
//!    exposition (scrape-ready) and JSON.
//!
//! Run with: `cargo run --release --example observe_quickstart`

use bohrium_repro::ir::parse_program;
use bohrium_repro::observe::{RingTraceSink, Stage};
use bohrium_repro::runtime::Runtime;
use bohrium_repro::serve::{ProgramHandle, Request, Server};
use bohrium_repro::tensor::Tensor;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One sink for both layers: runtime stage spans and server
    // queue/batch spans interleave into a single timeline.
    let sink = RingTraceSink::shared(256);
    let runtime = Runtime::builder().trace_sink(sink.clone()).build_shared();
    let server = Server::builder(Arc::clone(&runtime))
        .workers(0) // driven by service_once below: deterministic output
        .trace_sink(sink.clone())
        .build();

    // Two endpoints: a popular one both tenants hit, and a niche one.
    let popular = ProgramHandle::new(parse_program(
        ".base x f64[64] input\n.base y f64[64]\n\
         BH_MULTIPLY y x x\nBH_ADD y y x\nBH_ADD y y 1\nBH_SYNC y\n",
    )?);
    let niche = ProgramHandle::new(parse_program(
        "BH_IDENTITY a [0:64:1] 2\nBH_ADD a a 2\nBH_SYNC a\n",
    )?);
    let x = popular.program().reg_by_name("x").unwrap();
    let y = popular.program().reg_by_name("y").unwrap();
    let a = niche.program().reg_by_name("a").unwrap();

    let tickets = server.submit_many((0..12).map(|i| {
        if i % 3 < 2 {
            Request::with_handle(format!("tenant-{}", i % 3), &popular)
                .bind(x, Tensor::from_vec(vec![i as f64; 64]))
                .read(y)
        } else {
            Request::with_handle("tenant-2", &niche).read(a)
        }
    }));
    while server.service_once() {}
    for t in tickets {
        t.expect("queue sized for the burst").wait()?;
    }

    // 1. The per-digest profile: hottest programs first.
    println!("== profile (hottest digests) ==");
    for p in runtime.profile(4) {
        println!(
            "digest {:016x}: {} evals, {} plan build(s)",
            p.fingerprint, p.hits, p.plan_builds
        );
        for stage in [Stage::QueueWait, Stage::Optimise, Stage::Execute] {
            println!("  mean {:<10} {:?}", stage.name(), p.mean_stage(stage));
        }
        let opcodes = p
            .opcode_totals()
            .iter()
            .map(|(op, n)| format!("{} x{n}", op.name()))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  instructions: {opcodes}");
    }

    // 2. The flight recorder: the recent span history, oldest first.
    println!("\n== trace (last {} events) ==", sink.events().len());
    print!("{}", sink.dump());

    // 3. The exporter: Prometheus text exposition (and JSON, elided).
    println!("== metrics (Prometheus exposition, excerpt) ==");
    let text = server.metrics().to_prometheus();
    for line in text.lines().filter(|l| {
        l.starts_with("bh_serve_completed")
            || l.starts_with("bh_runtime_evals")
            || l.starts_with("bh_profile_digest_hits")
    }) {
        println!("{line}");
    }
    let json = server.metrics().to_json();
    println!("(JSON rendering: {} bytes)", json.len());
    Ok(())
}
