//! Heat diffusion: the imaging-style stencil workload the paper's
//! acknowledgements point at (CINEMA, "imaging of energy materials").
//!
//! Run with: `cargo run --release --example heat_diffusion`
//!
//! Builds the 5-point Jacobi stencil directly in byte-code — the sliced
//! views (`grid[0:n-2, 1:n-1]` etc.) show the descriptive `[start:stop:step]`
//! operand form on a 2-D base — then executes several sweeps through one
//! [`Runtime`] and verifies convergence behaviour against a direct Rust
//! implementation. The same program runs every sweep (only the bound
//! input changes), so the runtime optimises and validates it exactly
//! once: every sweep after the first is a transformation-cache hit.

use bh_ir::{parse_program, Program};
use bh_runtime::Runtime;
use bh_tensor::{Shape, Tensor};

/// One Jacobi sweep over an `n × n` grid as a byte-code program:
/// `next[i,j] = 0.25·(grid[i-1,j] + grid[i+1,j] + grid[i,j-1] + grid[i,j+1])`
/// on the interior, then copied back.
fn sweep_program(n: usize) -> Program {
    let i = n - 1; // interior upper bound
    let text = format!(
        ".base grid f64[{n},{n}] input\n\
         .base next f64[{n},{n}]\n\
         BH_IDENTITY next grid\n\
         BH_IDENTITY next[1:{i}:1,1:{i}:1] grid[0:{lim}:1,1:{i}:1]\n\
         BH_ADD next[1:{i}:1,1:{i}:1] next[1:{i}:1,1:{i}:1] grid[2:{n}:1,1:{i}:1]\n\
         BH_ADD next[1:{i}:1,1:{i}:1] next[1:{i}:1,1:{i}:1] grid[1:{i}:1,0:{lim}:1]\n\
         BH_ADD next[1:{i}:1,1:{i}:1] next[1:{i}:1,1:{i}:1] grid[1:{i}:1,2:{n}:1]\n\
         BH_MULTIPLY next[1:{i}:1,1:{i}:1] next[1:{i}:1,1:{i}:1] 0.25\n\
         BH_SYNC next\n",
        lim = n - 2,
    );
    parse_program(&text).expect("stencil program parses")
}

/// Reference sweep computed directly on the host.
fn reference_sweep(grid: &Tensor, n: usize) -> Tensor {
    let mut next = grid.clone();
    let g = grid.to_f64_vec();
    for r in 1..n - 1 {
        for c in 1..n - 1 {
            let v = 0.25
                * (g[(r - 1) * n + c] + g[(r + 1) * n + c] + g[r * n + c - 1] + g[r * n + c + 1]);
            next.set(&[r, c], bh_tensor::Scalar::F64(v))
                .expect("in range");
        }
    }
    next
}

fn hot_plate(n: usize) -> Tensor {
    let mut grid = Tensor::zeros(bh_tensor::DType::Float64, Shape::matrix(n, n));
    for c in 0..n {
        grid.set(&[0, c], bh_tensor::Scalar::F64(100.0))
            .expect("in range");
    }
    grid
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let sweeps = 50;
    let program = sweep_program(n);
    println!(
        "5-point Jacobi stencil on a {n}x{n} plate, {sweeps} sweeps, \
         {} byte-codes per sweep\n",
        program.live_len()
    );

    let mut grid = hot_plate(n);
    let mut reference = grid.clone();

    let runtime = Runtime::new();
    let grid_reg = program.reg_by_name("grid").expect("declared");
    let next_reg = program.reg_by_name("next").expect("declared");

    let start = std::time::Instant::now();
    for _ in 0..sweeps {
        let (next, _) = runtime.eval(&program, &[(grid_reg, grid)], next_reg)?;
        grid = next;
    }
    let elapsed = start.elapsed();

    // One structure, many sweeps: the rewrite fixpoint + validation ran on
    // the first sweep only; every later sweep re-used the cached plan.
    let stats = runtime.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, (sweeps - 1) as u64);
    println!("runtime stats: {stats}\n");

    for _ in 0..sweeps {
        reference = reference_sweep(&reference, n);
    }

    let diff = grid.max_abs_diff(&reference);
    println!("VM vs reference max |Δ| after {sweeps} sweeps: {diff:.3e}");
    assert!(diff < 1e-9, "stencil execution must match the reference");

    // Heat must have flowed into the interior monotonically from the hot edge.
    let centre_near_edge = grid.get(&[1, n / 2])?.as_f64();
    let centre = grid.get(&[n / 2, n / 2])?.as_f64();
    println!("temperature near hot edge: {centre_near_edge:.2}, at centre: {centre:.4}");
    assert!(centre_near_edge > 10.0 * centre.max(1e-12));

    println!("\n{sweeps} sweeps in {:.1} ms", elapsed.as_secs_f64() * 1e3);
    Ok(())
}
