//! Quickstart: the paper's Listing 1, end to end.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Reproduces the paper's §3 walk-through: a NumPy-style program records
//! byte-code (Listing 2), the algebraic transformation engine merges the
//! constants (Listing 3), and the VM executes the optimised sequence.

use bh_frontend::Context;
use bh_ir::PrintStyle;
use bh_tensor::{DType, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Listing 1 — "Adding three ones in Python":
    //     import bohrium as np
    //     a = np.zeros(10)
    //     a += 1; a += 1; a += 1
    //     print a
    let ctx = Context::new();
    let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
    a += 1.0;
    a += 1.0;
    a += 1.0;

    println!("== recorded byte-code (paper Listing 2) ==");
    print!("{}", ctx.recorded_text(PrintStyle::LISTING));

    // Evaluation syncs the result, optimises the sequence and executes it.
    let result = a.eval()?;
    println!("\n== result ==\n{result}");

    let report = ctx.last_report().expect("eval ran the optimizer");
    println!("\n== transformation report (Listing 2 -> Listing 3) ==");
    print!("{report}");

    let stats = ctx.last_stats().expect("eval executed the program");
    println!("\n== execution counters ==\n{stats}");

    assert_eq!(result.to_f64_vec(), vec![3.0; 10]);
    Ok(())
}
