//! Quickstart: the paper's Listing 1, end to end.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Reproduces the paper's §3 walk-through: a NumPy-style program records
//! byte-code (Listing 2), the runtime's algebraic transformation engine
//! merges the constants (Listing 3), and the VM executes the optimised
//! sequence. A second evaluation of the same trace is served from the
//! runtime's transformation cache — the fixpoint runs once.

use bh_frontend::Context;
use bh_ir::PrintStyle;
use bh_tensor::{DType, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Listing 1 — "Adding three ones in Python":
    //     import bohrium as np
    //     a = np.zeros(10)
    //     a += 1; a += 1; a += 1
    //     print a
    let ctx = Context::new();
    let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
    a += 1.0;
    a += 1.0;
    a += 1.0;

    println!("== recorded byte-code (paper Listing 2) ==");
    print!("{}", ctx.recorded_text(PrintStyle::LISTING));

    // Evaluation syncs the result, optimises the sequence and executes it.
    let (result, outcome) = a.eval_outcome()?;
    println!("\n== result ==\n{result}");

    println!("\n== transformation report (Listing 2 -> Listing 3) ==");
    print!("{}", outcome.report());

    println!("\n== execution counters ==\n{}", outcome.exec);

    // Evaluate the same trace again: the runtime recognises the structure
    // and skips the rewrite fixpoint entirely.
    let (_, again) = a.eval_outcome()?;
    assert!(
        again.cache_hit,
        "second eval must hit the transformation cache"
    );
    println!(
        "\n== runtime stats after a repeat eval ==\n{}",
        ctx.runtime().stats()
    );

    assert_eq!(result.to_f64_vec(), vec![3.0; 10]);
    Ok(())
}
