//! Eq. 2 end-to-end: a scientist writes `x = A⁻¹ · B`; the context-aware
//! transformation replaces it with an LU solve.
//!
//! Run with: `cargo run --release --example linear_solver`

use bh_frontend::Context;
use bh_linalg::{matmul, solve_lu, solve_via_inverse};
use bh_tensor::{random_tensor, DType, Distribution, Scalar, Shape, Tensor};
use std::time::Instant;

fn well_conditioned(m: usize, seed: u64) -> Tensor {
    let mut a = random_tensor(
        DType::Float64,
        Shape::matrix(m, m),
        seed,
        Distribution::Uniform,
    );
    for i in 0..m {
        let v = a.get(&[i, i]).expect("diag").as_f64();
        a.set(&[i, i], Scalar::F64(v + m as f64)).expect("diag");
    }
    a
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 192;
    let a = well_conditioned(m, 11);
    let b = random_tensor(DType::Float64, Shape::vector(m), 12, Distribution::Uniform);

    // --- what the programmer writes: the inverse formulation -------------
    let ctx = Context::new();
    let a_arr = ctx.array(a.clone());
    let b_arr = ctx.array(b.clone());
    let x = a_arr.inv().matmul(&b_arr); // x = A^-1 · B, Eq. 2 left side
    let (solved, outcome) = x.eval_outcome()?;

    let report = outcome.report();
    println!("== transformation report ==\n{report}");
    let rewrote = report
        .by_rule
        .iter()
        .any(|(name, n)| name == "inverse-solve" && *n > 0);
    assert!(rewrote, "the Eq. 2 rewrite should have fired");

    // --- verification: the solution actually solves the system -----------
    let ax = matmul(&a, &solved)?;
    let residual = ax.max_abs_diff(&b);
    println!("\n‖Ax − b‖∞ = {residual:.3e}");
    assert!(residual < 1e-8);

    // --- the substrate-level comparison the rewrite is exploiting --------
    println!("\n== direct comparison of the two strategies ({m}×{m}) ==");
    type Solver = fn(&Tensor, &Tensor) -> Result<Tensor, bh_linalg::LinalgError>;
    for (label, f) in [
        ("inverse + matmul", solve_via_inverse as Solver),
        ("LU factorisation ", solve_lu as Solver),
    ] {
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let s = Instant::now();
                let _ = f(&a, &b).expect("well-conditioned system");
                s.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        println!("{label}: {:8.3} ms (median of 5)", times[2] * 1e3);
    }
    let x1 = solve_via_inverse(&a, &b)?;
    let x2 = solve_lu(&a, &b)?;
    println!("max |x_inverse − x_lu| = {:.3e}", x1.max_abs_diff(&x2));
    Ok(())
}
