//! An imaging pipeline in the high-productivity style the paper motivates:
//! normalisation, gamma correction (a `BH_POWER` the optimizer expands)
//! and thresholding on a synthetic detector image.
//!
//! Run with: `cargo run --release --example image_pipeline`

use bh_frontend::Context;
use bh_tensor::{DType, Scalar, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (h, w) = (256, 256);
    let ctx = Context::new();

    // Synthetic detector frame: smooth gradient + seeded noise.
    let gradient = ctx.arange(DType::Float64, h * w);
    let noise = ctx.random(DType::Float64, Shape::vector(h * w), 2024);
    let frame = &gradient / (h * w) as f64 + &noise * 0.05;

    // 1. Normalise to [0, 1]: (x - min) / (max - min).
    //    (min/max are full reductions; the bridge lowers them to
    //    BH_*_REDUCE chains.)
    let lo = frame.min_axis(0);
    let hi = frame.max_axis(0);
    let lo_t = lo.eval()?.to_f64_vec()[0];
    let hi_t = hi.eval()?.to_f64_vec()[0];
    let normalised = (&frame - lo_t) / (hi_t - lo_t);

    // 2. Gamma correction with an integral gamma: x^3. This is the Eq. 1
    //    byte-code — BH_POWER — which power expansion rewrites into two
    //    multiplies.
    let corrected = normalised.powi(3);

    // 3. Threshold mask of "bright" pixels.
    let mask = corrected.gt_scalar(Scalar::F64(0.5));

    let bright = mask.astype(DType::Int64).sum();
    let (count_t, outcome) = bright.eval_outcome()?;
    let count = count_t.to_f64_vec()[0];

    let report = outcome.report();
    println!("== transformation report ==\n{report}");
    println!("== execution counters ==\n{}\n", outcome.exec);

    let expansion_fired = report
        .by_rule
        .iter()
        .any(|(name, n)| name == "power-expansion" && *n > 0);
    assert!(expansion_fired, "gamma correction should expand x^3");

    let total = (h * w) as f64;
    println!(
        "bright pixels: {count} of {total} ({:.1}%)",
        100.0 * count / total
    );
    // After x^3 gamma on a ~uniform [0,1] image, a pixel is "bright" when
    // x > 0.5^(1/3) ≈ 0.794 — roughly a fifth of the frame.
    let fraction = count / total;
    assert!(
        (0.10..0.35).contains(&fraction),
        "bright fraction {fraction} outside plausible band"
    );
    Ok(())
}
