//! Persistence & wire protocol quickstart: a runtime that snapshots its
//! plan cache across restarts, served over TCP.
//!
//! ```text
//! cargo run --release --example net_quickstart
//! ```
//!
//! Two acts. First a "process" earns its optimised plans, snapshots
//! them on shutdown (`RuntimeBuilder::persist_path`), and a restarted
//! runtime warm-starts from the snapshot — every plan re-verified and
//! re-proven before it may serve, with `RuntimeStats::warm_loads`
//! proving the restart was warm and `cache_misses == 0` proving it
//! never re-optimised. Second, the warm runtime goes on the wire: a
//! `NetServer` front door, a `NetClient` speaking length-prefixed
//! container frames, and a hostile submission answered by a typed error
//! frame instead of a panic.

use bh_net::{NetClient, NetEvent, NetServer};
use bh_runtime::Runtime;
use bh_serve::Server;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let programs: Vec<bh_ir::Program> = (0..4)
        .map(|i| {
            let n = 64 + i;
            let mut text = format!("BH_IDENTITY a [0:{n}:1] 0\n");
            for _ in 0..48 {
                text.push_str("BH_ADD a a 1\n");
            }
            text.push_str("BH_SYNC a\n");
            bh_ir::parse_program(&text).expect("quickstart program parses")
        })
        .collect();
    let snapshot =
        std::env::temp_dir().join(format!("bh-net-quickstart-{}.bhss", std::process::id()));

    // Act 1 — earn the plans, snapshot on drop.
    {
        let rt = Runtime::builder().persist_path(&snapshot).build();
        for p in &programs {
            let a = p.reg_by_name("a").unwrap();
            rt.eval(p, &[], a)?;
        }
        println!(
            "cold process: {} optimiser runs earned the cache",
            rt.stats().cache_misses
        );
        // Dropping the runtime writes the snapshot atomically.
    }

    // Act 2 — a restarted runtime warm-starts, then serves over TCP.
    let rt = Runtime::builder().persist_path(&snapshot).build_shared();
    let stats = rt.stats();
    println!(
        "warm restart: {} plans re-validated from the snapshot ({} rejected)",
        stats.warm_loads, stats.warm_rejects
    );

    let server = Arc::new(Server::builder(Arc::clone(&rt)).workers(1).build());
    let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server))?;
    println!("front door on {}", door.local_addr());

    let mut client = NetClient::connect(door.local_addr(), "tenant-a")?;
    for p in &programs {
        let a = p.reg_by_name("a").unwrap();
        match client.call(p, Some(a), None)? {
            NetEvent::Result(r) => assert_eq!(r.value.unwrap()[0], 48.0),
            NetEvent::Rejected(r) => panic!("rejected: {} ({})", r.code, r.detail),
        }
    }
    println!(
        "served {} requests over TCP with zero re-optimisation (cache misses: {})",
        programs.len(),
        rt.stats().cache_misses
    );

    // Hostile bytes become a typed error frame, never a panic.
    let id = client.submit_container(b"BHPC but not really".to_vec(), None, None)?;
    match client.read_event()? {
        NetEvent::Rejected(r) => {
            assert_eq!(r.request_id, id);
            println!(
                "hostile container rejected with code {:?} ({})",
                r.code, r.detail
            );
        }
        NetEvent::Result(_) => unreachable!("garbage must not evaluate"),
    }

    door.close();
    server.shutdown();
    let _ = std::fs::remove_file(&snapshot);
    Ok(())
}
